"""Fault-injection semantics on the in-process and simulated backends.

Each fault kind's numeric contract, pinned against a fault-free twin
run: ``drop_round`` zeroes exactly one wire row for one round (momentum
and loss accounting continue), ``corrupt_payload`` scales the row by its
factor, ``crash``/``rejoin`` remove and restore whole shards (momentum
cleared, losses excluded while absent), ``slow`` changes nothing
numeric.  The multiprocess side of the same contracts lives in
``test_faults_runtime.py`` / ``test_faults_differential.py``.
"""

import numpy as np
import pytest

from repro.data.phishing import make_phishing_dataset
from repro.exceptions import ConfigurationError, DegradedRunError
from repro.models.logistic import LogisticRegressionModel
from repro.pipeline.builder import Experiment
from repro.pipeline.callbacks import StepResultRecorder
from repro.telemetry import MemorySink, Telemetry


def make_experiment(faults=None, **overrides):
    settings = dict(
        model=LogisticRegressionModel(6),
        train_dataset=make_phishing_dataset(seed=0, num_points=120, num_features=6),
        num_steps=6,
        n=3,
        f=0,
        gar="average",
        batch_size=10,
        eval_every=100,
        seed=3,
        faults=faults,
    )
    settings.update(overrides)
    return Experiment(**settings)


def run_recorded(faults=None, **overrides):
    recorder = StepResultRecorder()
    experiment = make_experiment(faults=faults, **overrides)
    result = experiment.run(callbacks=[recorder])
    return result, recorder.results


class TestDropRound:
    def test_zeroes_one_row_for_one_round(self):
        plan = {"events": [{"kind": "drop_round", "round": 3, "worker": 1}]}
        clean_result, clean_steps = run_recorded()
        faulty_result, faulty_steps = run_recorded(faults=plan)
        # Rounds 1-2 are untouched: bit-identical to the clean run.
        for step in range(2):
            assert (
                faulty_steps[step].honest_submitted.tolist()
                == clean_steps[step].honest_submitted.tolist()
            )
        dropped = faulty_steps[2]
        assert np.all(dropped.honest_submitted[1] == 0.0)
        assert np.any(dropped.honest_submitted[0] != 0.0)
        # The worker computed the round — the wire lost it: its loss is
        # still recorded, so the round's loss matches the clean run's.
        assert (
            faulty_result.history.losses[2] == clean_result.history.losses[2]
        )

    def test_momentum_continues_through_a_drop(self):
        # With worker momentum, the post-drop round must differ from a
        # run where the worker's momentum was reset (a crash) — the drop
        # keeps the velocity buffers alive.
        drop = {"events": [{"kind": "drop_round", "round": 2, "worker": 0}],
                "num_shards": 3}
        crash = {"events": [
            {"kind": "crash", "round": 2, "shard": 0},
            {"kind": "rejoin", "round": 3, "shard": 0},
        ], "num_shards": 3}
        _, drop_steps = run_recorded(faults=drop, momentum=0.9)
        _, crash_steps = run_recorded(faults=crash, momentum=0.9)
        # Same zeroed wire row during the fault round...
        assert np.all(drop_steps[1].honest_submitted[0] == 0.0)
        assert np.all(crash_steps[1].honest_submitted[0] == 0.0)
        # ...but different worker state afterwards.
        assert (
            drop_steps[2].honest_submitted[0].tolist()
            != crash_steps[2].honest_submitted[0].tolist()
        )


class TestCorruptPayload:
    def test_scales_the_submitted_row(self):
        plan = {"events": [
            {"kind": "corrupt_payload", "round": 2, "worker": 0, "factor": 10.0}
        ]}
        _, clean_steps = run_recorded()
        _, faulty_steps = run_recorded(faults=plan)
        corrupt = faulty_steps[1]
        reference = clean_steps[1]
        assert (
            corrupt.honest_submitted[0].tolist()
            == (reference.honest_submitted[0] * 10.0).tolist()
        )
        assert (
            corrupt.honest_submitted[1].tolist()
            == reference.honest_submitted[1].tolist()
        )

    def test_corruption_perturbs_the_aggregate(self):
        plan = {"events": [
            {"kind": "corrupt_payload", "round": 2, "worker": 0, "factor": 10.0}
        ]}
        clean_result, _ = run_recorded()
        faulty_result, _ = run_recorded(faults=plan)
        assert (
            faulty_result.final_parameters.tolist()
            != clean_result.final_parameters.tolist()
        )


class TestCrashRejoin:
    PLAN = {"events": [
        {"kind": "crash", "round": 3, "shard": 2},
        {"kind": "rejoin", "round": 5, "shard": 2},
    ], "num_shards": 3}

    def test_rows_zero_while_down_and_return_after_rejoin(self):
        _, steps = run_recorded(faults=self.PLAN)
        assert np.any(steps[1].honest_submitted[2] != 0.0)  # round 2: up
        assert np.all(steps[2].honest_submitted[2] == 0.0)  # rounds 3-4: down
        assert np.all(steps[3].honest_submitted[2] == 0.0)
        assert np.any(steps[4].honest_submitted[2] != 0.0)  # round 5: back

    def test_losses_exclude_absent_workers(self):
        experiment = make_experiment(faults=self.PLAN)
        cluster = experiment.build_cluster()
        for _ in range(2):
            cluster.step()
        assert cluster.last_live_workers == (0, 1, 2)
        cluster.step()  # round 3: shard 2 (worker 2) is down
        assert cluster.last_live_workers == (0, 1)
        # Round 3's loss is measured at pre-update parameters, which are
        # still bit-identical to the clean run — so the only difference
        # is the excluded worker: the recorded mean must change.
        clean_result, _ = run_recorded()
        faulty_result, _ = run_recorded(faults=self.PLAN)
        assert (
            faulty_result.history.losses[1] == clean_result.history.losses[1]
        )
        assert (
            faulty_result.history.losses[2] != clean_result.history.losses[2]
        )

    def test_slow_never_changes_numbers(self):
        slow = {"events": [
            {"kind": "slow", "round": 2, "worker": 1, "factor": 8.0}
        ]}
        clean_result, _ = run_recorded()
        slow_result, _ = run_recorded(faults=slow)
        assert (
            slow_result.final_parameters.tolist()
            == clean_result.final_parameters.tolist()
        )
        assert (
            slow_result.history.losses.tolist()
            == clean_result.history.losses.tolist()
        )


class TestDegradedRun:
    def test_all_shards_down_raises_structured_error(self):
        plan = {"events": [
            {"kind": "crash", "round": 2, "shard": 0},
            {"kind": "crash", "round": 3, "shard": 1},
            {"kind": "crash", "round": 3, "shard": 2},
        ], "num_shards": 3}
        experiment = make_experiment(faults=plan)
        with pytest.raises(DegradedRunError, match="every honest worker"):
            experiment.run()

    def test_simulator_raises_the_same_error(self):
        plan = {"events": [
            {"kind": "crash", "round": 2, "shard": 0},
            {"kind": "crash", "round": 2, "shard": 1},
            {"kind": "crash", "round": 2, "shard": 2},
        ], "num_shards": 3}
        experiment = make_experiment(faults=plan)
        with pytest.raises(DegradedRunError, match="every honest worker"):
            experiment.simulate()


class TestWiring:
    def test_faults_require_matching_mp_shards(self):
        plan = {"events": [{"kind": "crash", "round": 2, "shard": 1}],
                "num_shards": 2}
        with pytest.raises(ConfigurationError, match="num_shards"):
            make_experiment(
                faults=plan, backend="multiprocess", num_shards=3
            )

    def test_faults_kwargs_require_faults(self):
        with pytest.raises(ConfigurationError, match="faults_kwargs"):
            make_experiment(faults_kwargs={"crash_rate": 0.1})

    def test_plan_and_kwargs_are_mutually_exclusive(self):
        from repro.faults import FaultPlan

        with pytest.raises(ConfigurationError):
            make_experiment(
                faults=FaultPlan(), faults_kwargs={"crash_rate": 0.1}
            )

    def test_describe_includes_the_plan(self):
        plan = {"events": [{"kind": "drop_round", "round": 2, "worker": 0}]}
        description = make_experiment(faults=plan).describe()
        assert description["faults"]["events"] == [
            {"kind": "drop_round", "round": 2, "worker": 0}
        ]
        assert make_experiment().describe()["faults"] is None

    def test_fault_injected_telemetry(self):
        sink = MemorySink()
        plan = {"events": [
            {"kind": "drop_round", "round": 2, "worker": 0},
            {"kind": "corrupt_payload", "round": 2, "worker": 1, "factor": 3.0},
        ]}
        experiment = make_experiment(
            faults=plan, telemetry=Telemetry(sinks=[sink])
        )
        experiment.run()
        counters = [
            event for event in sink.by_kind("counter")
            if event["name"] == "fault.injected"
        ]
        assert len(counters) == 1
        [event] = counters
        assert event["attrs"]["zeroed"] == [0]
        assert event["attrs"]["corrupted"] == [1]

    def test_random_model_is_deterministic_across_builds(self):
        kwargs = {"crash_rate": 0.2, "rejoin_after": 1, "num_shards": 3}
        first = make_experiment(faults="random", faults_kwargs=kwargs)
        second = make_experiment(faults="random", faults_kwargs=kwargs)
        assert first.fault_plan == second.fault_plan
