"""Shared test utilities."""

from __future__ import annotations

import numpy as np


def numerical_gradient(function, point: np.ndarray, epsilon: float = 1e-6) -> np.ndarray:
    """Central finite-difference gradient of a scalar function."""
    point = np.asarray(point, dtype=np.float64)
    gradient = np.zeros_like(point)
    for index in range(point.size):
        shift = np.zeros_like(point)
        shift[index] = epsilon
        gradient[index] = (function(point + shift) - function(point - shift)) / (
            2.0 * epsilon
        )
    return gradient


def random_gradient_matrix(
    n: int, d: int, seed: int = 0, scale: float = 1.0, center: float = 0.0
) -> np.ndarray:
    """An (n, d) matrix of Gaussian rows for GAR/attack tests."""
    rng = np.random.default_rng(seed)
    return center + scale * rng.standard_normal((n, d))
