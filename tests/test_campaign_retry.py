"""Campaign retry-with-backoff and quarantine semantics.

Transient failures retry with seed-deterministic exponential backoff;
a run failing every attempt lands a structured quarantine record under
its store key so the campaign completes and resumes skip the known-bad
cell.  ``DegradedRunError`` quarantines immediately (the scenario's
*result* is "this fault plan kills the run"), while the deterministic
:class:`ReproError` taxonomy still aborts loudly.
"""

import pytest

from repro.campaign.matrix import ScenarioMatrix
from repro.campaign.report import render_campaign_report
from repro.campaign.runner import execute_cell, run_campaign
from repro.campaign.store import STORE_SCHEMA, ResultStore
from repro.exceptions import ConfigurationError, DegradedRunError
from repro.rng import SeedTree

MATRIX = {
    "name": "retry-test",
    "model": {"name": "logistic", "loss_kind": "mse"},
    "data_seed": 0,
    "base": {
        "num_steps": 2,
        "n": 3,
        "f": 1,
        "batch_size": 5,
        "eval_every": 1,
        "seeds": [1, 2],
    },
    "axes": {"gar": ["mda"]},
    "report": {"rows": "gar", "metrics": ["final_accuracy"]},
}


@pytest.fixture()
def matrix():
    return ScenarioMatrix.from_dict(MATRIX)


class FlakyExecutor:
    """Serial executor that fails one (seed) a set number of times."""

    def __init__(self, fail_seed, failures, error=None):
        self.fail_seed = fail_seed
        self.failures = failures
        self.error = error or RuntimeError("transient worker failure")
        self.calls = []

    def __call__(self, job):
        self.calls.append((job.name, job.seed))
        if (
            job.seed == self.fail_seed
            and self.calls.count((job.name, job.seed)) <= self.failures
        ):
            raise self.error
        return execute_cell(job)


class TestRetry:
    def test_transient_failure_is_retried_to_success(self, matrix, tmp_path):
        store = ResultStore(tmp_path / "store")
        flaky = FlakyExecutor(fail_seed=2, failures=2)
        summary = run_campaign(
            matrix, store, execute=flaky, retries=2, retry_backoff=0.0
        )
        assert summary.executed == 2
        assert summary.quarantined == []
        # Seed 1 ran once; seed 2 needed all three attempts.
        assert flaky.calls.count(("gar=mda", 1)) == 1
        assert flaky.calls.count(("gar=mda", 2)) == 3
        # The eventual success stored a healthy record, not a quarantine.
        records = [store.load(key) for key in store.keys()]
        assert all(not record.get("quarantined") for record in records)

    def test_exhausted_retries_quarantine_the_cell(self, matrix, tmp_path):
        store = ResultStore(tmp_path / "store")
        flaky = FlakyExecutor(fail_seed=2, failures=10**6)
        summary = run_campaign(
            matrix, store, execute=flaky, retries=1, retry_backoff=0.0
        )
        assert summary.executed == 2  # the quarantine record counts as landed
        assert summary.quarantined == [("gar=mda", 2)]
        assert "quarantined: gar=mda/seed2" in summary.describe()
        assert flaky.calls.count(("gar=mda", 2)) == 2  # retries + 1 attempts
        [record] = [
            store.load(key)
            for key in store.keys()
            if store.load(key).get("quarantined")
        ]
        assert record["schema"] == STORE_SCHEMA
        assert record["seed"] == 2
        assert record["quarantined"] is True
        assert record["attempts"] == 2
        assert record["error"]["type"] == "RuntimeError"
        assert record["error"]["message"] == "transient worker failure"
        assert "history" not in record  # failure record, not a result

    def test_resume_skips_quarantined_cells(self, matrix, tmp_path):
        store = ResultStore(tmp_path / "store")
        run_campaign(
            matrix,
            store,
            execute=FlakyExecutor(fail_seed=2, failures=10**6),
            retries=0,
            retry_backoff=0.0,
        )

        def must_not_run(job):
            raise AssertionError("quarantined cell was re-executed")

        resumed = run_campaign(matrix, store, execute=must_not_run)
        assert resumed.executed == 0
        assert resumed.skipped == 2
        # The cached quarantine record still surfaces in the summary.
        assert resumed.quarantined == [("gar=mda", 2)]

    def test_degraded_run_quarantines_without_retry(self, matrix, tmp_path):
        store = ResultStore(tmp_path / "store")
        flaky = FlakyExecutor(
            fail_seed=2,
            failures=10**6,
            error=DegradedRunError("every honest worker has departed"),
        )
        summary = run_campaign(
            matrix, store, execute=flaky, retries=3, retry_backoff=0.0
        )
        # Retrying cannot change a deterministic fault plan: one attempt.
        assert flaky.calls.count(("gar=mda", 2)) == 1
        assert summary.quarantined == [("gar=mda", 2)]
        [key] = [
            key for key in store.keys() if store.load(key).get("quarantined")
        ]
        record = store.load(key)
        assert record["error"]["type"] == "DegradedRunError"
        assert record["attempts"] == 1

    def test_repro_errors_propagate(self, matrix, tmp_path):
        store = ResultStore(tmp_path / "store")
        flaky = FlakyExecutor(
            fail_seed=1,
            failures=10**6,
            error=ConfigurationError("unknown GAR 'typo'"),
        )
        # Deterministic misconfiguration must abort, never quarantine.
        with pytest.raises(ConfigurationError, match="typo"):
            run_campaign(
                matrix, store, execute=flaky, retries=3, retry_backoff=0.0
            )
        assert flaky.calls.count(("gar=mda", 1)) == 1

    def test_report_treats_quarantined_seed_as_missing(self, matrix, tmp_path):
        store = ResultStore(tmp_path / "store")
        run_campaign(
            matrix,
            store,
            execute=FlakyExecutor(fail_seed=2, failures=10**6),
            retries=0,
            retry_backoff=0.0,
        )
        report = render_campaign_report(matrix, store)
        # The healthy seed reports; the quarantined one drops out of the
        # aggregate instead of poisoning it.
        assert "retry-test" in report
        assert "nan" not in report.lower()


class TestBackoffJitter:
    def _sleep_schedule(self, matrix, tmp_path, name):
        store = ResultStore(tmp_path / name)
        slept = []
        flaky = FlakyExecutor(fail_seed=2, failures=10**6)
        import repro.campaign.runner as runner_module

        original_sleep = runner_module.time.sleep
        runner_module.time.sleep = slept.append
        try:
            run_campaign(
                matrix, store, execute=flaky, retries=2, retry_backoff=0.25
            )
        finally:
            runner_module.time.sleep = original_sleep
        return slept

    def test_jitter_is_seeded_not_wall_clock(self, matrix, tmp_path):
        first = self._sleep_schedule(matrix, tmp_path, "first")
        second = self._sleep_schedule(matrix, tmp_path, "second")
        # Replayed campaigns sleep the exact same schedule.
        assert first == second
        assert len(first) == 2  # two backoffs before the third attempt
        # Exponential envelope with jitter in [0.5, 1.5) per attempt.
        assert 0.125 <= first[0] < 0.375
        assert 0.25 <= first[1] < 0.75

    def test_jitter_matches_the_seed_tree_path(self, matrix, tmp_path):
        from repro.campaign.runner import plan_campaign

        plan = plan_campaign(matrix, ResultStore(tmp_path / "plan"))
        job = next(job for job in plan.pending if job.seed == 2)
        slept = self._sleep_schedule(matrix, tmp_path, "store")
        expected = [
            0.25
            * 2 ** (attempt - 1)
            * (0.5 + SeedTree(job.seed).generator("retry", job.key, attempt).random())
            for attempt in (1, 2)
        ]
        assert slept == expected


class TestValidation:
    def test_negative_retries_rejected(self, matrix, tmp_path):
        with pytest.raises(ConfigurationError, match="retries"):
            run_campaign(matrix, ResultStore(tmp_path / "s"), retries=-1)

    def test_negative_backoff_rejected(self, matrix, tmp_path):
        with pytest.raises(ConfigurationError, match="retry_backoff"):
            run_campaign(
                matrix, ResultStore(tmp_path / "s"), retry_backoff=-0.1
            )
