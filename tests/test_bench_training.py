"""The training benchmark harness and its CI regression guard."""

import numpy as np
import pytest

from repro.distributed.benchmark import (
    SCHEMA,
    TELEMETRY_OVERHEAD_LIMIT,
    TrainingBenchCase,
    check_speedup_regressions,
    default_training_grid,
    format_training_table,
    run_case,
    run_training_benchmarks,
    smoke_training_grid,
)


def _tiny_case(**overrides):
    base = dict(
        name="tiny",
        gar="average",
        n=4,
        f=0,
        num_features=6,
        batch_size=8,
        rounds=4,
        attack=None,
        num_points=120,
    )
    base.update(overrides)
    return TrainingBenchCase(**base)


class TestRunCase:
    def test_outputs_identical_and_positive_rates(self):
        result = run_case(_tiny_case(), repeats=1)
        assert result.outputs_identical
        assert result.engine_rounds_per_sec > 0
        assert result.reference_rounds_per_sec > 0
        assert result.speedup > 0

    def test_dp_and_attack_cell(self):
        case = _tiny_case(
            name="tiny-dp", gar="krum", n=7, f=2, epsilon=0.5, attack="little"
        )
        result = run_case(case, repeats=1)
        assert result.outputs_identical

    def test_telemetry_cell_measures_paired_overhead(self):
        result = run_case(_tiny_case(name="tiny-telemetry", telemetry=True), repeats=2)
        assert result.outputs_identical  # telemetry on ≡ telemetry off
        assert result.telemetry_overhead_fraction is not None
        assert np.isfinite(result.telemetry_overhead_fraction)
        entry = result.to_dict()
        assert entry["telemetry_overhead_fraction"] == (
            result.telemetry_overhead_fraction
        )

    def test_non_telemetry_cells_report_no_overhead(self):
        result = run_case(_tiny_case(), repeats=1)
        assert result.telemetry_overhead_fraction is None

    def test_payload_schema(self):
        payload = run_training_benchmarks([_tiny_case()], repeats=1)
        assert payload["schema"] == SCHEMA
        assert payload["unit"] == "training_rounds_per_second"
        (entry,) = payload["results"]
        assert entry["name"] == "tiny"
        assert entry["d"] == 7
        assert entry["outputs_identical"] is True
        assert entry["noise_kind"] is None  # no DP in this cell
        table = format_training_table(payload)
        assert "tiny" in table and "speedup" in table


class TestGrids:
    def test_headline_cell_is_paper_scale(self):
        cells = {case.name: case for case in default_training_grid()}
        headline = cells["krum-dp-momentum"]
        assert headline.gar == "krum"
        assert headline.n == 25
        assert headline.dimension == 100
        assert headline.epsilon is not None
        assert headline.noise_kind == "gaussian"
        assert headline.momentum == 0.99

    def test_grid_covers_the_issue_axes(self):
        """GAR x DP on/off x momentum on/off x (n, d) variation."""
        cases = default_training_grid()
        assert len({case.gar for case in cases}) >= 4
        assert any(case.epsilon is None for case in cases)
        assert any(case.epsilon is not None for case in cases)
        assert any(case.momentum == 0.0 for case in cases)
        assert any(case.momentum > 0.0 for case in cases)
        assert len({(case.n, case.dimension) for case in cases}) >= 3

    def test_smoke_cells_are_exact_full_grid_members(self):
        """The CI guard joins by name, so the configurations must match."""
        full = {case.name: case for case in default_training_grid()}
        smoke = smoke_training_grid()
        assert smoke
        for case in smoke:
            assert case == full[case.name]

    def test_names_unique(self):
        names = [case.name for case in default_training_grid()]
        assert len(names) == len(set(names))


def _payload(cells):
    return {
        "schema": SCHEMA,
        "results": [
            {
                "name": name,
                "speedup": speedup,
                "outputs_identical": identical,
            }
            for name, speedup, identical in cells
        ],
    }


class TestRegressionGuard:
    def test_no_regression_when_equal(self):
        payload = _payload([("a", 3.0, True)])
        assert check_speedup_regressions(payload, payload) == []

    def test_within_tolerance_passes(self):
        current = _payload([("a", 2.2, True)])
        baseline = _payload([("a", 3.0, True)])
        assert check_speedup_regressions(current, baseline, tolerance=0.30) == []

    def test_beyond_tolerance_fails(self):
        current = _payload([("a", 2.0, True)])
        baseline = _payload([("a", 3.0, True)])
        failures = check_speedup_regressions(current, baseline, tolerance=0.30)
        assert len(failures) == 1
        assert "2.00x" in failures[0]

    def test_faster_than_baseline_passes(self):
        current = _payload([("a", 9.0, True)])
        baseline = _payload([("a", 3.0, True)])
        assert check_speedup_regressions(current, baseline) == []

    def test_output_mismatch_always_fails(self):
        current = _payload([("a", 9.0, False)])
        baseline = _payload([("a", 3.0, True)])
        failures = check_speedup_regressions(current, baseline)
        assert len(failures) == 1
        assert "diverged" in failures[0]

    def test_unknown_cells_are_ignored_when_others_join(self):
        current = _payload([("a", 3.0, True), ("new-cell", 1.0, True)])
        baseline = _payload([("a", 3.0, True)])
        assert check_speedup_regressions(current, baseline) == []

    def test_zero_joined_cells_fails_loudly(self):
        """Pointing --check at the wrong baseline must not pass vacuously."""
        current = _payload([("new-cell", 1.0, True)])
        baseline = _payload([("a", 3.0, True)])
        failures = check_speedup_regressions(current, baseline)
        assert len(failures) == 1
        assert "no benchmark cell matched" in failures[0]
        # Empty current results (nothing ran) stays a non-failure.
        assert check_speedup_regressions({"results": []}, baseline) == []

    def test_kernel_payloads_supported(self):
        entry = {"gar": "krum", "n": 11, "f": 4, "d": 69, "stack": 2, "speedup": 10.0}
        current = {"results": [dict(entry, speedup=5.0)]}
        baseline = {"results": [entry]}
        failures = check_speedup_regressions(current, baseline, tolerance=0.30)
        assert len(failures) == 1
        current = {"results": [dict(entry, speedup=8.0)]}
        assert check_speedup_regressions(current, baseline, tolerance=0.30) == []

    def test_tolerance_validated(self):
        with pytest.raises(ValueError, match="tolerance"):
            check_speedup_regressions({}, {}, tolerance=1.5)

    def test_telemetry_overhead_within_limit_passes(self):
        current = _payload([("a-telemetry", 0.99, True)])
        current["results"][0]["telemetry_overhead_fraction"] = 0.01
        baseline = _payload([("a-telemetry", 1.0, True)])
        assert check_speedup_regressions(current, baseline) == []

    def test_telemetry_overhead_beyond_limit_fails(self):
        current = _payload([("a-telemetry", 0.99, True)])
        current["results"][0]["telemetry_overhead_fraction"] = (
            TELEMETRY_OVERHEAD_LIMIT + 0.05
        )
        baseline = _payload([("a-telemetry", 1.0, True)])
        failures = check_speedup_regressions(current, baseline)
        assert len(failures) == 1
        assert "telemetry overhead" in failures[0]

    def test_telemetry_cells_skip_the_speedup_rule(self):
        """The on/off throughput ratio is noise-dominated; only the
        paired overhead estimate is guarded."""
        current = _payload([("a-telemetry", 0.5, True)])
        current["results"][0]["telemetry_overhead_fraction"] = -0.02
        baseline = _payload([("a-telemetry", 1.0, True)])
        assert check_speedup_regressions(current, baseline) == []


class TestCommittedBaseline:
    """The committed BENCH_training.json stays consistent with the code."""

    @pytest.fixture(scope="class")
    def committed(self):
        import json
        from pathlib import Path

        path = Path(__file__).parent.parent / "BENCH_training.json"
        assert path.exists(), "BENCH_training.json must be committed"
        return json.loads(path.read_text())

    def test_schema_and_outputs(self, committed):
        assert committed["schema"] == SCHEMA
        committed_names = {entry["name"] for entry in committed["results"]}
        assert {case.name for case in default_training_grid()} <= committed_names
        for entry in committed["results"]:
            assert entry["outputs_identical"] is True
            assert np.isfinite(entry["speedup"]) and entry["speedup"] > 0.0
            if entry.get("backend") == "multiprocess":
                # The mp "speedup" is the multiprocess/in-process
                # throughput ratio: expected < 1, with the gap reported
                # as a positive per-round IPC overhead.
                assert entry["speedup"] < 1.0
                assert np.isfinite(entry["ipc_overhead_ms"])
                assert entry["ipc_overhead_ms"] > 0.0
            elif entry.get("telemetry_overhead_fraction") is not None:
                # Telemetry cells compare on/off, not engine/reference:
                # the "speedup" is a noisy ~1.0 ratio; the guarded
                # quantity is the paired overhead estimate.
                assert 0.5 < entry["speedup"] < 2.0
                assert (
                    entry["telemetry_overhead_fraction"]
                    <= TELEMETRY_OVERHEAD_LIMIT
                )
            elif entry.get("codec") is not None:
                # Codec cells compare codec-on vs the raw engine: the
                # codec costs throughput (ratio at or below ~1), and the
                # guarded quantities are the byte accounting and the
                # wire reduction it buys.
                assert 0.2 < entry["speedup"] < 2.0
                assert entry["bytes_on_wire"] > 0
                assert entry["wire_reduction"] >= 1.0
                if entry["codec"] in ("sign", "top-k"):
                    assert entry["wire_reduction"] >= 4.0
            else:
                assert entry["speedup"] > 1.0

    def test_smoke_cells_present_in_baseline(self, committed):
        """The CI guard joins smoke cells against the committed file."""
        committed_names = {entry["name"] for entry in committed["results"]}
        for case in smoke_training_grid():
            assert case.name in committed_names
