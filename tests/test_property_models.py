"""Property-based tests (hypothesis) on the model substrate.

Invariants every model must satisfy on *arbitrary* well-formed inputs:
analytic gradients match finite differences, per-example gradients
average to the batch gradient, and losses respond correctly to label
perturbations.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.linear import LinearRegressionModel
from repro.models.logistic import LogisticRegressionModel
from repro.models.mlp import MLPClassifierModel
from repro.models.quadratic import MeanEstimationModel
from repro.models.softmax import SoftmaxClassifierModel
from tests.helpers import numerical_gradient

# Small dimensions keep the finite-difference loops fast.
batch_sizes = st.integers(2, 6)
feature_dims = st.integers(1, 4)
seeds = st.integers(0, 10_000)


def make_batch(rng, batch_size, num_features, binary=True):
    features = rng.uniform(-2.0, 2.0, size=(batch_size, num_features))
    if binary:
        labels = (rng.random(batch_size) < 0.5).astype(float)
    else:
        labels = rng.uniform(-2.0, 2.0, size=batch_size)
    return features, labels


class TestGradientConsistency:
    @given(seed=seeds, batch_size=batch_sizes, num_features=feature_dims)
    @settings(max_examples=25, deadline=None)
    def test_logistic_mse_gradient(self, seed, batch_size, num_features):
        rng = np.random.default_rng(seed)
        model = LogisticRegressionModel(num_features, loss_kind="mse")
        features, labels = make_batch(rng, batch_size, num_features)
        w = rng.standard_normal(model.dimension)
        numeric = numerical_gradient(lambda p: model.loss(p, features, labels), w)
        assert np.allclose(model.gradient(w, features, labels), numeric, atol=1e-5)

    @given(seed=seeds, batch_size=batch_sizes, num_features=feature_dims)
    @settings(max_examples=25, deadline=None)
    def test_linear_gradient(self, seed, batch_size, num_features):
        rng = np.random.default_rng(seed)
        model = LinearRegressionModel(num_features)
        features, labels = make_batch(rng, batch_size, num_features, binary=False)
        w = rng.standard_normal(model.dimension)
        numeric = numerical_gradient(lambda p: model.loss(p, features, labels), w)
        assert np.allclose(model.gradient(w, features, labels), numeric, atol=1e-5)

    @given(seed=seeds, batch_size=batch_sizes, num_features=feature_dims)
    @settings(max_examples=20, deadline=None)
    def test_mlp_gradient(self, seed, batch_size, num_features):
        rng = np.random.default_rng(seed)
        model = MLPClassifierModel(num_features, hidden_units=3)
        features, labels = make_batch(rng, batch_size, num_features)
        w = model.initial_parameters(rng)
        numeric = numerical_gradient(lambda p: model.loss(p, features, labels), w)
        assert np.allclose(model.gradient(w, features, labels), numeric, atol=1e-4)

    @given(seed=seeds, batch_size=batch_sizes, num_features=feature_dims)
    @settings(max_examples=20, deadline=None)
    def test_softmax_gradient(self, seed, batch_size, num_features):
        rng = np.random.default_rng(seed)
        model = SoftmaxClassifierModel(num_features, num_classes=3)
        features, _ = make_batch(rng, batch_size, num_features)
        labels = rng.integers(0, 3, size=batch_size).astype(float)
        w = 0.5 * rng.standard_normal(model.dimension)
        numeric = numerical_gradient(lambda p: model.loss(p, features, labels), w)
        assert np.allclose(model.gradient(w, features, labels), numeric, atol=1e-5)


class TestPerExampleAveraging:
    MODELS = [
        ("logistic", lambda d: LogisticRegressionModel(d)),
        ("linear", lambda d: LinearRegressionModel(d)),
        ("quadratic", lambda d: MeanEstimationModel(d)),
        ("mlp", lambda d: MLPClassifierModel(d, hidden_units=3)),
    ]

    @pytest.mark.parametrize("name,factory", MODELS, ids=[m[0] for m in MODELS])
    @given(seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_per_example_mean_is_batch_gradient(self, name, factory, seed):
        rng = np.random.default_rng(seed)
        num_features = 3
        model = factory(num_features)
        features, labels = make_batch(rng, 5, num_features)
        if name == "mlp":
            w = model.initial_parameters(rng)
        else:
            w = rng.standard_normal(model.dimension)
        per_example = model.per_example_gradients(w, features, labels)
        assert per_example.shape == (5, model.dimension)
        assert np.allclose(
            per_example.mean(axis=0), model.gradient(w, features, labels), atol=1e-12
        )


class TestLossSemantics:
    @given(seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_logistic_loss_nonnegative(self, seed):
        rng = np.random.default_rng(seed)
        model = LogisticRegressionModel(3, loss_kind="mse")
        features, labels = make_batch(rng, 5, 3)
        w = 3.0 * rng.standard_normal(model.dimension)
        assert model.loss(w, features, labels) >= 0.0

    @given(seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_quadratic_loss_minimised_at_mean(self, seed):
        rng = np.random.default_rng(seed)
        model = MeanEstimationModel(3)
        cloud = rng.standard_normal((10, 3))
        optimum = model.optimum(cloud)
        best = model.loss(optimum, cloud, None)
        other = optimum + 0.1 * rng.standard_normal(3)
        assert model.loss(other, cloud, None) >= best

    @given(seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_flipping_labels_flips_mse_loss_order(self, seed):
        """If w fits labels y well, it must fit 1-y badly (MSE on
        sigmoid outputs is symmetric around 0.5)."""
        rng = np.random.default_rng(seed)
        model = LogisticRegressionModel(3, loss_kind="mse")
        features, labels = make_batch(rng, 6, 3)
        w = rng.standard_normal(model.dimension)
        loss = model.loss(w, features, labels)
        flipped = model.loss(w, features, 1.0 - labels)
        probabilities = model.predict_proba(w, features)
        # loss + flipped = mean((p-y)^2 + (p-1+y)^2) which only depends
        # on p: check the identity directly.
        expected = float(np.mean((probabilities - labels) ** 2 + (probabilities - 1 + labels) ** 2))
        assert loss + flipped == pytest.approx(expected)
