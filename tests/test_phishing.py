"""Tests for the synthetic phishing dataset generator.

Includes the calibration contract from DESIGN.md: shape identical to
the real LIBSVM phishing dataset, values in {0, 0.5, 1}, a roughly
balanced label split, and linear-model learnability around 93 %.
"""

import numpy as np
import pytest

from repro.data.datasets import train_test_split
from repro.data.phishing import (
    PHISHING_NUM_FEATURES,
    PHISHING_NUM_POINTS,
    PHISHING_TRAIN_SIZE,
    make_phishing_dataset,
)
from repro.exceptions import DataError
from repro.models.logistic import LogisticRegressionModel
from repro.rng import generator_from_seed


class TestShape:
    def test_default_shape_matches_real_dataset(self):
        dataset = make_phishing_dataset(seed=0)
        assert dataset.num_points == PHISHING_NUM_POINTS == 11_055
        assert dataset.num_features == PHISHING_NUM_FEATURES == 68

    def test_custom_shape(self):
        dataset = make_phishing_dataset(seed=0, num_points=100, num_features=10)
        assert dataset.num_points == 100
        assert dataset.num_features == 10

    def test_feature_values_ternary(self):
        dataset = make_phishing_dataset(seed=0, num_points=500)
        assert set(np.unique(dataset.features)) <= {0.0, 0.5, 1.0}

    def test_labels_binary(self):
        dataset = make_phishing_dataset(seed=0, num_points=500)
        assert set(np.unique(dataset.labels)) <= {0.0, 1.0}

    @pytest.mark.parametrize("bad", [0, -5])
    def test_invalid_num_points(self, bad):
        with pytest.raises(DataError):
            make_phishing_dataset(num_points=bad)

    @pytest.mark.parametrize("bad", [0, -1])
    def test_invalid_num_features(self, bad):
        with pytest.raises(DataError):
            make_phishing_dataset(num_features=bad)


class TestDeterminism:
    def test_same_seed_identical(self):
        a = make_phishing_dataset(seed=3, num_points=200)
        b = make_phishing_dataset(seed=3, num_points=200)
        assert np.array_equal(a.features, b.features)
        assert np.array_equal(a.labels, b.labels)

    def test_different_seed_differs(self):
        a = make_phishing_dataset(seed=3, num_points=200)
        b = make_phishing_dataset(seed=4, num_points=200)
        assert not np.array_equal(a.labels, b.labels)


class TestCalibration:
    """The DESIGN.md contract with the real dataset's difficulty."""

    @pytest.fixture(scope="class")
    def full_dataset(self):
        return make_phishing_dataset(seed=0)

    def test_class_balance_roughly_55_45(self, full_dataset):
        balance = full_dataset.class_balance()
        assert 0.45 <= balance[1.0] <= 0.65

    def test_linear_model_reaches_92_percent(self, full_dataset):
        train, test = train_test_split(
            full_dataset, PHISHING_TRAIN_SIZE, generator_from_seed(1)
        )
        model = LogisticRegressionModel(PHISHING_NUM_FEATURES, loss_kind="nll")
        weights = np.zeros(model.dimension)
        for _ in range(1500):
            weights -= 0.5 * model.gradient(weights, train.features, train.labels)
        accuracy = model.accuracy(weights, test.features, test.labels)
        assert accuracy >= 0.90, f"calibration regressed: test accuracy {accuracy:.3f}"

    def test_not_trivially_separable(self, full_dataset):
        """Label noise keeps the task from being 100% learnable."""
        model = LogisticRegressionModel(PHISHING_NUM_FEATURES, loss_kind="nll")
        weights = np.zeros(model.dimension)
        for _ in range(500):
            weights -= 0.5 * model.gradient(
                weights, full_dataset.features, full_dataset.labels
            )
        accuracy = model.accuracy(weights, full_dataset.features, full_dataset.labels)
        assert accuracy <= 0.995
