"""Multiprocess cluster runtime: lifecycle, membership and failures.

Bit-identity against the in-process engine is proven in
``test_runtime_differential.py``; this file owns everything else the
runtime promises — validation, graceful leave, crash and hang handling
(no deadlock, deterministic degraded traces, zeroed rows), start-method
independence, and the startup failure path.

Crashes are staged through the specs' failure-injection seam
(``fail_step``/``fail_mode``) rather than by signalling real processes:
an injected ``os._exit`` at a pinned round makes the degraded trace
deterministic, so the tests can assert exact equality instead of
"didn't hang".
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.data.phishing import make_phishing_dataset
from repro.distributed.runtime import (
    CRASH_EXIT_CODE,
    MultiprocessCluster,
    WorkerShardSpec,
)
from repro.exceptions import ConfigurationError, TrainingError
from repro.models.logistic import LogisticRegressionModel
from repro.pipeline.builder import Experiment


def make_experiment(**overrides):
    """A small seed-pinned multiprocess experiment (no attack)."""
    settings = dict(
        model=LogisticRegressionModel(6),
        train_dataset=make_phishing_dataset(seed=0, num_points=120, num_features=6),
        num_steps=4,
        n=4,
        f=0,
        gar="average",
        batch_size=10,
        eval_every=100,
        seed=3,
        backend="multiprocess",
        num_shards=2,
    )
    settings.update(overrides)
    return Experiment(**settings)


def build_runtime(experiment, specs=None, **overrides):
    """A runtime from an experiment, with optional spec surgery."""
    settings = dict(
        server=experiment.build_server(),
        shard_specs=specs if specs is not None else experiment.build_shard_specs(),
        num_byzantine=experiment.num_byzantine,
        attack=experiment.attack,
        attack_rng=(
            experiment.seeds.generator("attack")
            if experiment.attack is not None
            else None
        ),
        network=experiment.build_network(),
    )
    settings.update(overrides)
    return MultiprocessCluster(**settings)


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------


def test_shard_spec_validation():
    experiment = make_experiment()
    spec = experiment.build_shard_specs()[0]
    with pytest.raises(ConfigurationError):
        replace(spec, worker_ids=(0, 2))  # not contiguous
    with pytest.raises(ConfigurationError):
        replace(spec, worker_ids=(0, 1, 2))  # dataset count mismatch
    with pytest.raises(ConfigurationError):
        replace(spec, clip_mode="bogus")
    with pytest.raises(ConfigurationError):
        replace(spec, fail_mode="explode")
    with pytest.raises(ConfigurationError):
        replace(spec, fail_step=-1)


def test_cluster_validation():
    experiment = make_experiment()
    specs = experiment.build_shard_specs()
    with pytest.raises(ConfigurationError, match="at least one"):
        build_runtime(experiment, specs=[])
    with pytest.raises(ConfigurationError, match="contiguously"):
        build_runtime(experiment, specs=specs[1:])  # starts at a nonzero id
    with pytest.raises(ConfigurationError, match="requires an attack"):
        build_runtime(experiment, num_byzantine=1)
    with pytest.raises(ConfigurationError, match="round_timeout"):
        build_runtime(experiment, round_timeout=0.0)
    # n mismatch: server expects 4 workers, specs only provide shard 0's.
    with pytest.raises(ConfigurationError, match="expects n="):
        build_runtime(experiment, specs=specs[:1])


def test_builder_backend_validation():
    with pytest.raises(ConfigurationError, match="backend"):
        make_experiment(backend="threads")
    with pytest.raises(ConfigurationError, match="num_shards"):
        make_experiment(num_shards=0)
    with pytest.raises(ConfigurationError, match="round_timeout"):
        make_experiment(round_timeout=-1.0)


def test_builder_shard_split_covers_cohort():
    experiment = make_experiment(n=5, num_shards=2)
    specs = experiment.build_shard_specs()
    assert [spec.worker_ids for spec in specs] == [(0, 1, 2), (3, 4)]
    oversharded = make_experiment(n=3, num_shards=8).build_shard_specs()
    assert [spec.worker_ids for spec in oversharded] == [(0,), (1,), (2,)]


# ----------------------------------------------------------------------
# lifecycle
# ----------------------------------------------------------------------


def test_basic_run_and_surface():
    experiment = make_experiment()
    with build_runtime(experiment) as runtime:
        assert runtime.honest_workers == []
        assert runtime.n == 4 and runtime.num_honest == 4
        assert runtime.last_honest_losses is None
        result = runtime.run(3)
        assert runtime.step_count == 3 and result.step == 3
        assert result.honest_submitted.shape == (4, 7)
        assert np.all(np.isfinite(runtime.parameters))
        assert runtime.last_honest_losses.shape == (4,)
        assert runtime.live_worker_count == 4 and runtime.departed == {}
    # Shutdown is terminal and idempotent.
    runtime.shutdown()
    with pytest.raises(TrainingError, match="shut down"):
        runtime.step()


def test_no_shard_joins_raises_cleanly():
    experiment = make_experiment()
    specs = [
        replace(spec, fail_step=0) for spec in experiment.build_shard_specs()
    ]
    runtime = build_runtime(experiment, specs=specs)
    with pytest.raises(TrainingError, match="no worker shard joined"):
        runtime.start()


# ----------------------------------------------------------------------
# membership: leave / crash / hang
# ----------------------------------------------------------------------


def run_degraded(experiment_factory, specs_transform, steps=5, **overrides):
    """Run with surgically failed shards; return (results, runtime state)."""
    experiment = experiment_factory()
    specs = specs_transform(experiment.build_shard_specs())
    results = []
    with build_runtime(experiment, specs=specs, **overrides) as runtime:
        for _ in range(steps):
            results.append(runtime.step())
        state = {
            "departed": runtime.departed,
            "departed_workers": runtime.departed_workers,
            "live": runtime.live_worker_count,
            "parameters": runtime.parameters.tolist(),
        }
    return results, state


def test_graceful_leave_zeroes_rows_permanently():
    experiment = make_experiment()
    with build_runtime(experiment) as runtime:
        runtime.step()
        runtime.leave(1)  # workers 2, 3
        assert runtime.departed == {1: "left"}
        assert runtime.departed_workers == [2, 3]
        assert runtime.live_worker_count == 2
        result = runtime.step()
        assert np.all(result.honest_submitted[2:] == 0.0)
        assert np.any(result.honest_submitted[:2] != 0.0)
        assert runtime.last_honest_losses.shape == (2,)
        runtime.leave(1)  # already departed: a no-op
        with pytest.raises(ConfigurationError, match="unknown shard"):
            runtime.leave(9)


def test_worker_death_mid_round_degrades_without_hanging():
    def fail_shard_one(specs):
        return [
            replace(spec, fail_step=3) if spec.shard_id == 1 else spec
            for spec in specs
        ]

    results, state = run_degraded(make_experiment, fail_shard_one)
    assert state["departed"] == {1: f"process died (code {CRASH_EXIT_CODE})"}
    assert state["departed_workers"] == [2, 3]
    assert state["live"] == 2
    # Rows are real before the crash round, zero from it onward; the
    # crash happens *before* the shard writes round 3.
    assert np.any(results[1].honest_submitted[2:] != 0.0)
    for result in results[2:]:
        assert np.all(result.honest_submitted[2:] == 0.0)
        assert np.all(result.honest_clean[2:] == 0.0)
        assert np.any(result.honest_submitted[:2] != 0.0)


def test_degraded_trace_is_deterministic():
    def fail_shard_one(specs):
        return [
            replace(spec, fail_step=3) if spec.shard_id == 1 else spec
            for spec in specs
        ]

    _, first = run_degraded(make_experiment, fail_shard_one)
    _, second = run_degraded(make_experiment, fail_shard_one)
    assert first == second  # exact: reasons, rows, and parameter bits


def test_hung_worker_times_out_to_the_same_trace_as_a_dead_one():
    def fail(mode):
        def transform(specs):
            return [
                replace(spec, fail_step=3, fail_mode=mode)
                if spec.shard_id == 1
                else spec
                for spec in specs
            ]

        return transform

    _, died = run_degraded(make_experiment, fail("die"))
    _, hung = run_degraded(make_experiment, fail("hang"), round_timeout=2.0)
    assert hung["departed"] == {1: "round timed out"}
    assert hung["departed_workers"] == died["departed_workers"]
    # Same degraded semantics regardless of *how* the shard vanished.
    assert hung["parameters"] == died["parameters"]


# ----------------------------------------------------------------------
# start methods
# ----------------------------------------------------------------------


def test_results_are_start_method_independent(monkeypatch):
    def final_parameters():
        experiment = make_experiment(num_steps=3)
        result = experiment.run()
        return result.final_parameters.tolist()

    monkeypatch.setenv("REPRO_START_METHOD", "fork")
    fork_parameters = final_parameters()
    monkeypatch.setenv("REPRO_START_METHOD", "spawn")
    spawn_parameters = final_parameters()
    assert fork_parameters == spawn_parameters


def test_invalid_start_method_rejected(monkeypatch):
    monkeypatch.setenv("REPRO_START_METHOD", "telepathy")
    from repro.distributed.runtime.context import pinned_start_method

    with pytest.raises(ConfigurationError, match="REPRO_START_METHOD"):
        pinned_start_method()
