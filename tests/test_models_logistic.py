"""Tests for the logistic regression model (MSE and NLL losses)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.models.logistic import LogisticRegressionModel, sigmoid
from tests.helpers import numerical_gradient


@pytest.fixture
def batch():
    rng = np.random.default_rng(0)
    features = rng.random((12, 4))
    labels = (rng.random(12) < 0.5).astype(float)
    return features, labels


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_symmetry(self):
        z = np.linspace(-5, 5, 11)
        assert np.allclose(sigmoid(z) + sigmoid(-z), 1.0)

    def test_extreme_values_stable(self):
        out = sigmoid(np.array([-1000.0, 1000.0]))
        assert out[0] == pytest.approx(0.0)
        assert out[1] == pytest.approx(1.0)
        assert np.all(np.isfinite(out))

    def test_monotonic(self):
        z = np.linspace(-10, 10, 101)
        assert np.all(np.diff(sigmoid(z)) > 0)


class TestConstruction:
    def test_dimension_includes_bias(self):
        assert LogisticRegressionModel(68).dimension == 69

    def test_paper_dimension(self):
        """68 phishing features give exactly the paper's d = 69."""
        model = LogisticRegressionModel(num_features=68, loss_kind="mse")
        assert model.dimension == 69

    def test_invalid_features(self):
        with pytest.raises(ConfigurationError):
            LogisticRegressionModel(0)

    def test_invalid_loss(self):
        with pytest.raises(ConfigurationError, match="loss_kind"):
            LogisticRegressionModel(3, loss_kind="hinge")

    def test_initial_parameters_zero(self):
        model = LogisticRegressionModel(4)
        assert np.array_equal(model.initial_parameters(), np.zeros(5))


@pytest.mark.parametrize("loss_kind", ["mse", "nll"])
class TestGradients:
    def test_gradient_matches_numerical(self, batch, loss_kind):
        features, labels = batch
        model = LogisticRegressionModel(4, loss_kind=loss_kind)
        rng = np.random.default_rng(1)
        w = rng.standard_normal(model.dimension)
        analytic = model.gradient(w, features, labels)
        numeric = numerical_gradient(lambda p: model.loss(p, features, labels), w)
        assert np.allclose(analytic, numeric, atol=1e-6)

    def test_per_example_mean_equals_batch(self, batch, loss_kind):
        features, labels = batch
        model = LogisticRegressionModel(4, loss_kind=loss_kind)
        w = np.random.default_rng(2).standard_normal(model.dimension)
        per_example = model.per_example_gradients(w, features, labels)
        assert per_example.shape == (12, model.dimension)
        assert np.allclose(per_example.mean(axis=0), model.gradient(w, features, labels))

    def test_gradient_zero_at_perfect_fit(self, batch, loss_kind):
        """A saturated perfect classifier has (near-)zero gradient."""
        features, labels = batch
        model = LogisticRegressionModel(4, loss_kind=loss_kind)
        # Build weights that perfectly separate using the labels directly:
        # giant bias sign driven by a fabricated feature = labels.
        fabricated = np.hstack([labels[:, None], features[:, 1:]])
        w = np.array([1000.0, 0.0, 0.0, 0.0, -500.0])
        gradient = model.gradient(w, fabricated, labels)
        assert np.linalg.norm(gradient) < 1e-6


class TestLosses:
    def test_mse_loss_range(self, batch):
        features, labels = batch
        model = LogisticRegressionModel(4, loss_kind="mse")
        loss = model.loss(np.zeros(5), features, labels)
        assert 0.0 <= loss <= 1.0

    def test_mse_at_zero_weights(self, batch):
        """Zero weights predict 0.5 everywhere, so MSE = 0.25 exactly."""
        features, labels = batch
        model = LogisticRegressionModel(4, loss_kind="mse")
        assert model.loss(np.zeros(5), features, labels) == pytest.approx(0.25)

    def test_nll_at_zero_weights(self, batch):
        features, labels = batch
        model = LogisticRegressionModel(4, loss_kind="nll")
        assert model.loss(np.zeros(5), features, labels) == pytest.approx(np.log(2.0))

    def test_nll_never_negative(self, batch):
        features, labels = batch
        model = LogisticRegressionModel(4, loss_kind="nll")
        w = np.random.default_rng(3).standard_normal(5)
        assert model.loss(w, features, labels) >= 0.0


class TestPrediction:
    def test_predict_binary(self, batch):
        features, _ = batch
        model = LogisticRegressionModel(4)
        predictions = model.predict(np.ones(5), features)
        assert set(np.unique(predictions)) <= {0.0, 1.0}

    def test_predict_proba_in_unit_interval(self, batch):
        features, _ = batch
        model = LogisticRegressionModel(4)
        probabilities = model.predict_proba(np.ones(5), features)
        assert np.all((probabilities >= 0) & (probabilities <= 1))

    def test_accuracy_perfect_on_own_predictions(self, batch):
        features, _ = batch
        model = LogisticRegressionModel(4)
        w = np.random.default_rng(4).standard_normal(5)
        predictions = model.predict(w, features)
        assert model.accuracy(w, features, predictions) == 1.0

    def test_bias_changes_predictions(self):
        model = LogisticRegressionModel(2)
        features = np.zeros((3, 2))
        high_bias = np.array([0.0, 0.0, 5.0])
        low_bias = np.array([0.0, 0.0, -5.0])
        assert np.all(model.predict(high_bias, features) == 1.0)
        assert np.all(model.predict(low_bias, features) == 0.0)


class TestValidation:
    def test_wrong_feature_width_rejected(self, batch):
        features, labels = batch
        model = LogisticRegressionModel(7)
        with pytest.raises(ValueError, match="features"):
            model.loss(np.zeros(8), features, labels)

    def test_wrong_parameter_shape_rejected(self, batch):
        features, labels = batch
        model = LogisticRegressionModel(4)
        with pytest.raises(ValueError, match="parameters"):
            model.loss(np.zeros(3), features, labels)
