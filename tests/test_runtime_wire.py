"""Wire-plane lifecycle tests: create/attach, cleanup, leak-freedom.

The multiprocess runtime's correctness tests live in
``test_runtime_cluster.py`` / ``test_runtime_differential.py``; this
file owns the shared-memory plumbing — that segments round-trip bits,
that ``close`` releases and the owner unlinks, and (the load-bearing
part) that abnormal exits — an uncaught exception, a SIGINT mid
``python -m repro run`` — leave nothing behind in ``/dev/shm``.
"""

import json
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import numpy as np
import pytest

from repro.distributed.runtime.wire import (
    SEGMENT_PREFIX,
    PlaneSpec,
    WirePlane,
    wire_segment_names,
)
from repro.exceptions import ConfigurationError

SRC = str(Path(__file__).resolve().parent.parent / "src")


def test_spec_layout():
    spec = PlaneSpec(session="abc123", num_honest=3, dimension=5)
    assert spec.segment_name == f"{SEGMENT_PREFIX}-abc123"
    # params (5) + wire (15) + clean (15) + losses (3) + wire_bytes (3),
    # float64.
    assert spec.size_bytes == 8 * (5 + 15 + 15 + 3 + 3)


def test_create_validates_shape():
    with pytest.raises(ConfigurationError):
        WirePlane.create(0, 4)
    with pytest.raises(ConfigurationError):
        WirePlane.create(3, 0)


def test_create_attach_roundtrip_bits():
    rng = np.random.default_rng(0)
    with WirePlane.create(3, 4) as owner:
        assert not owner.closed
        assert np.all(owner.wire == 0.0) and np.all(owner.parameters == 0.0)
        values = rng.standard_normal((3, 4))
        owner.wire[:] = values
        owner.parameters[:] = values[0]
        owner.losses[:] = values[:, 0]

        attached = WirePlane.attach(owner.spec)
        try:
            # Exact float64 bits, both directions.
            assert attached.wire.tolist() == values.tolist()
            assert attached.parameters.tolist() == values[0].tolist()
            assert attached.losses.tolist() == values[:, 0].tolist()
            attached.clean[1] = 7.5
            assert owner.clean[1].tolist() == [7.5] * 4
        finally:
            attached.close()
        # A non-owner close never unlinks: the owner can still map it.
        assert owner.spec.segment_name in wire_segment_names()
    assert owner.closed


def test_close_unlinks_and_is_idempotent():
    plane = WirePlane.create(2, 3)
    name = plane.spec.segment_name
    assert name in wire_segment_names()
    plane.close()
    assert name not in wire_segment_names()
    plane.close()  # idempotent
    assert plane.closed
    with pytest.raises(FileNotFoundError):
        WirePlane.attach(plane.spec)


def test_atexit_backstop_unlinks_on_crash():
    """A process that dies with an open owned plane must not leak it."""
    script = textwrap.dedent(
        """
        import sys
        from repro.distributed.runtime.wire import WirePlane

        plane = WirePlane.create(2, 3)
        print(plane.spec.segment_name, flush=True)
        raise SystemExit(3)  # atexit still runs; no explicit close()
        """
    )
    completed = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        timeout=60,
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
    )
    assert completed.returncode == 3, completed.stderr
    name = completed.stdout.strip()
    assert name.startswith(f"{SEGMENT_PREFIX}-")
    assert name not in wire_segment_names()


@pytest.mark.slow
def test_sigint_mid_run_leaves_no_segments(tmp_path):
    """``python -m repro run`` killed by SIGINT releases every segment.

    Uses a run long enough that the interrupt lands mid-training, and
    waits for the wire segment to exist before signalling so the
    interrupt exercises the teardown path, not the startup path.
    """
    config = {
        "configs": [
            {
                "name": "sigint-probe",
                "num_steps": 100000,
                "n": 5,
                "f": 0,
                "gar": "average",
                "batch_size": 10,
                "eval_every": 100000,
                "seeds": [1],
                "backend": "multiprocess",
                "num_shards": 2,
            }
        ]
    }
    config_path = tmp_path / "long.json"
    config_path.write_text(json.dumps(config))
    before = set(wire_segment_names())
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "run", str(config_path)],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
    )
    try:
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if set(wire_segment_names()) - before:
                break
            if process.poll() is not None:
                pytest.fail(f"run exited early with {process.returncode}")
            time.sleep(0.1)
        else:
            pytest.fail("wire segment never appeared")
        process.send_signal(signal.SIGINT)
        returncode = process.wait(timeout=60)
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)
    assert returncode == 130
    assert set(wire_segment_names()) - before == set()
