"""Tests for the geometric-median GAR (extension)."""

import numpy as np
import pytest

from repro.exceptions import AggregationError
from repro.gars import get_gar
from repro.gars.geometric_median import GeometricMedianGAR, geometric_median
from tests.helpers import random_gradient_matrix


class TestGeometricMedianFunction:
    def test_single_point(self):
        point = np.array([[1.0, 2.0]])
        assert np.allclose(geometric_median(point), [1.0, 2.0])

    def test_collinear_points_median(self):
        """For 1-D data the geometric median is the coordinate median."""
        points = np.array([[0.0], [1.0], [10.0]])
        assert geometric_median(points)[0] == pytest.approx(1.0, abs=1e-6)

    def test_symmetric_cloud_center(self):
        rng = np.random.default_rng(0)
        cloud = rng.standard_normal((2000, 3))
        symmetric = np.vstack([cloud, -cloud])  # exactly symmetric around 0
        assert np.allclose(geometric_median(symmetric), 0.0, atol=1e-6)

    def test_minimises_distance_sum(self):
        rng = np.random.default_rng(1)
        points = rng.standard_normal((20, 4))
        median = geometric_median(points)

        def objective(candidate):
            return float(np.linalg.norm(points - candidate[None, :], axis=1).sum())

        best = objective(median)
        for _ in range(20):
            perturbed = median + 0.01 * rng.standard_normal(4)
            assert objective(perturbed) >= best - 1e-9

    def test_robust_to_minority_outliers(self):
        rng = np.random.default_rng(2)
        honest = 0.1 * rng.standard_normal((7, 3))
        outliers = 1e6 + rng.standard_normal((4, 3))
        median = geometric_median(np.vstack([honest, outliers]))
        assert np.linalg.norm(median) < 1.0

    def test_validation(self):
        with pytest.raises(AggregationError):
            geometric_median(np.zeros(3))
        with pytest.raises(AggregationError):
            geometric_median(np.zeros((2, 2)), max_iterations=0)


class TestGeometricMedianGAR:
    def test_registry(self):
        gar = get_gar("geometric-median", 11, 5)
        assert isinstance(gar, GeometricMedianGAR)

    def test_precondition(self):
        assert GeometricMedianGAR.supports(11, 5)
        assert not GeometricMedianGAR.supports(10, 5)

    def test_k_f_conservative_zero(self):
        assert get_gar("geometric-median", 11, 5).k_f() == 0.0

    def test_aggregates_around_honest_cluster(self):
        gar = get_gar("geometric-median", 11, 5)
        rng = np.random.default_rng(3)
        honest = 1.0 + 0.05 * rng.standard_normal((6, 4))
        byzantine = np.tile(np.full(4, -50.0), (5, 1))
        output = gar.aggregate(np.vstack([honest, byzantine]))
        assert np.allclose(output, 1.0, atol=0.5)

    def test_structural_properties(self):
        gar = get_gar("geometric-median", 7, 3)
        gradients = random_gradient_matrix(7, 5, seed=4)
        base = gar.aggregate(gradients)
        # Permutation invariance.
        permuted = gradients[np.random.default_rng(5).permutation(7)]
        assert np.allclose(gar.aggregate(permuted), base, atol=1e-7)
        # Translation equivariance.
        shift = np.array([3.0, -1.0, 0.0, 2.0, 5.0])
        assert np.allclose(gar.aggregate(gradients + shift), base + shift, atol=1e-6)
        # Positive scale equivariance.
        assert np.allclose(gar.aggregate(2.0 * gradients), 2.0 * base, atol=1e-6)

    def test_end_to_end_training(self):
        from repro.data.phishing import make_phishing_dataset
        from repro.distributed.trainer import train
        from repro.models.logistic import LogisticRegressionModel

        data = make_phishing_dataset(seed=0, num_points=1200, num_features=10)
        model = LogisticRegressionModel(10, loss_kind="mse")
        result = train(
            model=model, train_dataset=data, num_steps=80, n=7, f=3,
            gar="geometric-median", attack="little", batch_size=10, seed=1,
        )
        assert result.history.min_loss < result.history.losses[0]
