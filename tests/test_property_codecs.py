"""Property-based tests (hypothesis) for the wire-codec family.

Five families of properties, run against randomly drawn vectors:

* **Losslessness** — codecs advertising ``lossless = True`` must
  reconstruct their input bit for bit (and report the raw float size).
* **Unbiasedness** — stochastic quantization is an unbiased estimator:
  the mean reconstruction over many independently-seeded codecs
  converges to the input (checked within a CLT-scaled tolerance).
  Discrete-Gaussian stochastic rounding shares the property.
* **Top-k structure** — the sparsified vector has exactly
  ``min(k, d)`` nonzero support drawn from the largest-|coordinate|
  entries, surviving coordinates are copied verbatim, and the
  reconstruction error never exceeds the norm of the dropped tail.
* **Per-message determinism** — the encoding of message ``(step,
  worker)`` is a pure function of the codec's seed, never of the
  order in which messages are encoded or of which other messages were
  encoded first (the invariant that makes sync, simulator and
  multiprocess replays of a compressed run bit-identical — the same
  one ``LossyNetwork.drops_message`` pins for packet drops).
* **Batch ≡ per-row** — ``encode_block`` equals looping
  ``encode_row``, bit for bit, including for codecs that override the
  block path (QSGD's sliced per-step stream).

Byte counts are checked against the documented closed forms wherever
they are data-independent.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import (
    DiscreteGaussianCodec,
    GradientCodec,
    IdentityCodec,
    SignCodec,
    StochasticQuantizationCodec,
    TopKCodec,
)
from repro.exceptions import ConfigurationError
from repro.pipeline.registry import REGISTRY

#: One representative instance per registered codec, identically
#: parameterised everywhere in this module.
CODEC_FACTORIES = {
    "identity": lambda: IdentityCodec(),
    "top-k": lambda: TopKCodec(fraction=0.25),
    "sign": lambda: SignCodec(),
    "qsgd": lambda: StochasticQuantizationCodec(levels=8, seed=99),
    "discrete-gaussian": lambda: DiscreteGaussianCodec(
        granularity=1.0 / 64, sigma=1.0, seed=99
    ),
}


def _vector(d):
    return st.lists(
        st.floats(-50.0, 50.0, allow_nan=False, allow_infinity=False, width=32),
        min_size=d,
        max_size=d,
    ).map(lambda rows: np.asarray(rows, dtype=np.float64))


def test_every_registered_codec_is_covered():
    assert set(CODEC_FACTORIES) == set(REGISTRY.available("codec"))


class TestLosslessness:
    @given(vector=_vector(13))
    @settings(max_examples=30, deadline=None)
    def test_lossless_codecs_reconstruct_bit_for_bit(self, vector):
        for name, factory in CODEC_FACTORIES.items():
            codec = factory()
            if not codec.lossless:
                continue
            wire, nbytes = codec.encode_row(vector, step=3, worker=2)
            assert wire.tolist() == vector.tolist(), name
            assert nbytes == 8 * vector.size, name

    def test_identity_block_is_the_same_object(self):
        """The engine's zero-copy fast path relies on object identity."""
        codec = IdentityCodec()
        matrix = np.arange(12.0).reshape(3, 4)
        encoded, nbytes = codec.encode_block(matrix, 0, [0, 1, 2])
        assert encoded is matrix
        assert nbytes.tolist() == [32, 32, 32]


class TestUnbiasedness:
    @given(vector=_vector(8))
    @settings(max_examples=10, deadline=None)
    def test_qsgd_mean_over_seeds_converges_to_input(self, vector):
        trials = 400
        total = np.zeros_like(vector)
        for seed in range(trials):
            codec = StochasticQuantizationCodec(levels=4, seed=seed)
            wire, _ = codec.encode_row(vector, step=0, worker=0)
            total += wire
        mean = total / trials
        # Each coordinate is scale/levels-quantized: the rounding term
        # is bounded by one bin, so the CLT bound on the empirical mean
        # is (bin width) * 4 / sqrt(trials).
        bin_width = np.abs(vector).max() / 4 if np.abs(vector).max() else 0.0
        tolerance = bin_width * 4 / math.sqrt(trials) + 1e-12
        assert np.all(np.abs(mean - vector) <= tolerance)

    @given(vector=_vector(8))
    @settings(max_examples=10, deadline=None)
    def test_discrete_gaussian_rounding_is_unbiased(self, vector):
        trials = 400
        granularity = 1.0 / 32
        total = np.zeros_like(vector)
        for seed in range(trials):
            codec = DiscreteGaussianCodec(
                granularity=granularity, sigma=0.0, seed=seed
            )
            wire, _ = codec.encode_row(vector, step=0, worker=0)
            total += wire
        mean = total / trials
        # Stochastic rounding to the granularity grid, zero-mean noise
        # off: per-coordinate error is one grid cell, CLT-scaled.
        tolerance = granularity * 4 / math.sqrt(trials) + 1e-12
        assert np.all(np.abs(mean - vector) <= tolerance)


class TestTopKStructure:
    @given(vector=_vector(17), fraction=st.sampled_from([0.1, 0.25, 0.5, 1.0]))
    @settings(max_examples=40, deadline=None)
    def test_support_size_and_byte_count(self, vector, fraction):
        codec = TopKCodec(fraction=fraction)
        k = codec.support_size(vector.size)
        wire, nbytes = codec.encode_row(vector, step=0, worker=0)
        assert k == max(1, math.ceil(fraction * vector.size))
        assert np.count_nonzero(wire) <= k  # kept entries may be zero
        if k >= vector.size:
            assert nbytes == 12 * vector.size
        else:
            assert nbytes == 12 * k

    @given(vector=_vector(17))
    @settings(max_examples=40, deadline=None)
    def test_survivors_are_the_largest_and_copied_verbatim(self, vector):
        codec = TopKCodec(k=5)
        wire, _ = codec.encode_row(vector, step=0, worker=0)
        kept = np.nonzero(wire)[0]
        assert all(wire[i] == vector[i] for i in kept)
        # Every surviving magnitude >= every dropped magnitude.
        dropped = np.setdiff1d(np.arange(vector.size), kept)
        surviving_magnitudes = np.abs(vector[kept])
        if kept.size and dropped.size:
            # Dropped entries that are exactly zero contribute nothing;
            # a kept zero only happens when everything left is zero.
            assert surviving_magnitudes.min() >= np.abs(
                np.delete(vector, kept)
            ).max() - 1e-15 or np.count_nonzero(vector) <= 5

    @given(vector=_vector(17))
    @settings(max_examples=40, deadline=None)
    def test_error_bounded_by_dropped_tail_norm(self, vector):
        codec = TopKCodec(k=5)
        wire, _ = codec.encode_row(vector, step=0, worker=0)
        error = np.linalg.norm(vector - wire)
        tail = np.sort(np.abs(vector))[:-5]
        assert error <= np.linalg.norm(tail) + 1e-12


class TestPerMessageDeterminism:
    """Message (step, worker) encodes identically whatever else happened.

    The exact invariant the three execution paths rely on: the sync
    cluster encodes whole rounds at once, the simulator encodes partial
    cohorts one wake at a time, the multiprocess runtime encodes
    per-shard row blocks — all must agree bit for bit.
    """

    @pytest.mark.parametrize("name", sorted(CODEC_FACTORIES))
    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_independent_of_encoding_order(self, name, data):
        vector = data.draw(_vector(9))
        other = data.draw(_vector(9))
        fresh = CODEC_FACTORIES[name]()
        baseline, baseline_bytes = fresh.encode_row(vector, step=7, worker=3)

        # Same codec object, after encoding unrelated messages first —
        # including the same worker at other steps and other workers at
        # the same step.
        warmed = CODEC_FACTORIES[name]()
        warmed.encode_row(other, step=7, worker=0)
        warmed.encode_row(other, step=2, worker=3)
        warmed.encode_block(np.stack([other, vector]), 5, [1, 2])
        replay, replay_bytes = warmed.encode_row(vector, step=7, worker=3)

        assert replay.tolist() == baseline.tolist()
        assert replay_bytes == baseline_bytes

    @pytest.mark.parametrize("name", sorted(CODEC_FACTORIES))
    def test_does_not_mutate_the_input(self, name):
        codec = CODEC_FACTORIES[name]()
        vector = np.linspace(-2.0, 2.0, 11)
        copy = vector.copy()
        codec.encode_row(vector, step=1, worker=1)
        codec.encode_block(np.stack([vector, copy]), 2, [0, 1])
        assert vector.tolist() == copy.tolist()


class TestBatchEqualsPerRow:
    @pytest.mark.parametrize("name", sorted(CODEC_FACTORIES))
    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_encode_block_matches_row_loop(self, name, data):
        rows = [data.draw(_vector(7)) for _ in range(4)]
        matrix = np.stack(rows)
        workers = [0, 1, 3, 6]  # gaps: worker ids need not be dense
        step = data.draw(st.integers(0, 50))

        block_codec = CODEC_FACTORIES[name]()
        encoded, nbytes = block_codec.encode_block(matrix, step, workers)

        row_codec = CODEC_FACTORIES[name]()
        for row, worker in enumerate(workers):
            wire, count = row_codec.encode_row(matrix[row], step, worker)
            assert encoded[row].tolist() == wire.tolist(), name
            assert nbytes[row] == count, name

    def test_block_shape_mismatch_raises(self):
        codec = SignCodec()
        with pytest.raises(ConfigurationError):
            codec.encode_block(np.zeros((3, 4)), 0, [0, 1])


class TestConstruction:
    def test_stochastic_codecs_require_seed_or_rng(self):
        with pytest.raises(ConfigurationError):
            StochasticQuantizationCodec()
        with pytest.raises(ConfigurationError):
            DiscreteGaussianCodec()

    def test_rng_first_draw_fixes_the_seed(self):
        rng = np.random.default_rng(5)
        expected = int(np.random.default_rng(5).integers(0, 2**63))
        codec = StochasticQuantizationCodec(rng=rng)
        assert codec.seed == expected

    def test_codecs_are_picklable(self):
        """Shard specs ship codecs across process boundaries."""
        import pickle

        for name, factory in CODEC_FACTORIES.items():
            codec = factory()
            clone = pickle.loads(pickle.dumps(codec))
            vector = np.linspace(-1.0, 1.0, 9)
            assert (
                clone.encode_row(vector, 4, 2)[0].tolist()
                == codec.encode_row(vector, 4, 2)[0].tolist()
            ), name

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            TopKCodec(k=0)
        with pytest.raises(ConfigurationError):
            TopKCodec(fraction=0.0)
        with pytest.raises(ConfigurationError):
            TopKCodec(fraction=1.5)
        with pytest.raises(ConfigurationError):
            StochasticQuantizationCodec(levels=0, seed=1)
        with pytest.raises(ConfigurationError):
            DiscreteGaussianCodec(granularity=0.0, seed=1)
        with pytest.raises(ConfigurationError):
            DiscreteGaussianCodec(sigma=-1.0, seed=1)


class TestGradientCodecBase:
    def test_encode_row_is_abstract(self):
        codec = GradientCodec()
        with pytest.raises(NotImplementedError):
            codec.encode_row(np.zeros(3), 0, 0)
