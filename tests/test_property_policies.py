"""Hypothesis property tests for the PR 3 simulation server policies.

Two invariants the campaign substrate leans on:

* a :class:`BufferedSemiSyncPolicy` whose buffer covers the whole
  cluster (K = n) at zero latency *is* the sync barrier — same rounds,
  same histories, same final parameters, bit for bit;
* :class:`AsyncStalenessPolicy` damping factors stay in ``(0, 1]`` for
  every scheme, alpha and staleness (including the deep-staleness
  regime where a naive ``alpha ** s`` underflows to exactly 0.0).
"""

import sys

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.datasets import train_test_split
from repro.data.phishing import make_phishing_dataset
from repro.models.logistic import LogisticRegressionModel
from repro.pipeline.builder import Experiment
from repro.rng import generator_from_seed
from repro.simulation.policies import (
    STALENESS_DAMPINGS,
    AsyncStalenessPolicy,
    BufferedSemiSyncPolicy,
    SyncPolicy,
)


def tiny_environment():
    dataset = make_phishing_dataset(seed=0, num_points=80, num_features=4)
    train_set, test_set = train_test_split(dataset, 60, generator_from_seed(1))
    model = LogisticRegressionModel(4, loss_kind="mse")
    return model, train_set, test_set


def simulate(policy, policy_kwargs, *, n, f, gar, attack, epsilon, seed, num_steps):
    model, train_set, test_set = tiny_environment()
    experiment = Experiment(
        model=model,
        train_dataset=train_set,
        test_dataset=test_set,
        num_steps=num_steps,
        n=n,
        f=f,
        gar=gar,
        attack=attack,
        batch_size=4,
        epsilon=epsilon,
        eval_every=2,
        seed=seed,
        policy=policy,
        policy_kwargs=policy_kwargs,
    )
    return experiment.simulate()


class TestSemiSyncFullBufferIsSync:
    @given(
        n=st.integers(3, 6),
        f=st.integers(0, 1),
        gar=st.sampled_from(["median", "mda", "average"]),
        epsilon=st.sampled_from([None, 0.5]),
        seed=st.integers(1, 3),
        num_steps=st.integers(2, 4),
    )
    @settings(max_examples=12, deadline=None)
    def test_bit_identical_histories(self, n, f, gar, epsilon, seed, num_steps):
        attack = "little" if f > 0 else None
        shared = dict(
            n=n, f=f, gar=gar, attack=attack, epsilon=epsilon,
            seed=seed, num_steps=num_steps,
        )
        sync = simulate("sync", None, **shared)
        semi = simulate("semi-sync", {"buffer_size": n}, **shared)
        assert semi.history.to_dict() == sync.history.to_dict()
        assert semi.final_parameters.tolist() == sync.final_parameters.tolist()
        assert semi.rounds == sync.rounds
        assert semi.virtual_time == sync.virtual_time == 0.0

    def test_policy_objects_agree_on_geometry(self):
        sync, semi = SyncPolicy(), BufferedSemiSyncPolicy(buffer_size=5)
        for policy in (sync, semi):
            policy.bind(5, 4, 3)
        assert semi.buffer_size == 5
        assert sync.barrier and semi.barrier


class TestAsyncDampingRange:
    @given(
        damping=st.sampled_from(STALENESS_DAMPINGS),
        alpha=st.floats(
            min_value=sys.float_info.min, max_value=1.0, exclude_min=False
        ),
        staleness=st.integers(0, 10**6),
    )
    @settings(max_examples=200, deadline=None)
    def test_weight_in_unit_interval(self, damping, alpha, staleness):
        policy = AsyncStalenessPolicy(damping=damping, alpha=alpha)
        weight = policy.weight(staleness)
        assert 0.0 < weight <= 1.0

    @given(
        alpha=st.floats(min_value=0.01, max_value=0.99),
        first=st.integers(0, 100),
        second=st.integers(0, 100),
    )
    @settings(max_examples=60, deadline=None)
    def test_exponential_monotone_in_staleness(self, alpha, first, second):
        policy = AsyncStalenessPolicy(damping="exponential", alpha=alpha)
        if first <= second:
            assert policy.weight(first) >= policy.weight(second)
        else:
            assert policy.weight(first) <= policy.weight(second)

    @given(staleness=st.integers(0, 10**6))
    @settings(max_examples=60, deadline=None)
    def test_inverse_is_exact(self, staleness):
        policy = AsyncStalenessPolicy(damping="inverse")
        assert policy.weight(staleness) == 1.0 / (1.0 + staleness)

    def test_deep_staleness_never_underflows_to_zero(self):
        policy = AsyncStalenessPolicy(damping="exponential", alpha=0.01)
        assert policy.weight(10**6) > 0.0

    def test_constant_is_one(self):
        policy = AsyncStalenessPolicy(damping="constant")
        assert all(policy.weight(s) == 1.0 for s in (0, 1, 10, 10**6))
