"""Tests for the analysis extras: leakage, variance, variance reduction."""

import math

import numpy as np
import pytest

from repro.analysis.leakage import (
    gradient_inversion_study,
    invert_linear_gradient,
    reconstruction_error,
)
from repro.analysis.variance import estimate_gradient_moments, vn_ratio_for_model
from repro.analysis.variance_reduction import (
    momentum_variance_inflation,
    momentum_vn_reduction_factor,
)
from repro.data.datasets import Dataset
from repro.data.phishing import make_phishing_dataset
from repro.data.synthetic import make_gaussian_mean_dataset
from repro.exceptions import ConfigurationError
from repro.models.logistic import LogisticRegressionModel
from repro.models.quadratic import MeanEstimationModel
from repro.privacy.mechanisms import GaussianMechanism


class TestInversion:
    def test_exact_recovery_from_clean_gradient(self):
        """The Zhu-et-al. leak in closed form: b = 1 gradients of a
        linear model reveal the sample exactly."""
        model = LogisticRegressionModel(5, loss_kind="mse")
        rng = np.random.default_rng(0)
        features = rng.random((1, 5))
        labels = np.array([1.0])
        w = rng.standard_normal(6)
        gradient = model.gradient(w, features, labels)
        recovered = invert_linear_gradient(gradient)
        assert np.allclose(recovered, features[0], atol=1e-8)

    def test_scaling_invariance(self):
        """Clipping (a scalar rescale) does not impede the inversion."""
        gradient = np.array([0.2, 0.4, 0.1])
        assert np.allclose(
            invert_linear_gradient(gradient), invert_linear_gradient(5.0 * gradient)
        )

    def test_zero_bias_rejected(self):
        with pytest.raises(ConfigurationError, match="bias"):
            invert_linear_gradient(np.array([1.0, 0.0]))

    def test_too_short_rejected(self):
        with pytest.raises(ConfigurationError):
            invert_linear_gradient(np.array([1.0]))

    def test_reconstruction_error_zero_for_exact(self):
        x = np.array([1.0, 2.0])
        assert reconstruction_error(x, x) == 0.0

    def test_reconstruction_error_relative(self):
        x = np.array([3.0, 4.0])  # norm 5
        assert reconstruction_error(x, np.zeros(2)) == pytest.approx(1.0)


class TestInversionStudy:
    def test_dp_degrades_reconstruction(self):
        dataset = make_phishing_dataset(seed=0, num_points=300, num_features=10)
        model = LogisticRegressionModel(10, loss_kind="mse")
        mechanism = GaussianMechanism.for_clipped_gradients(0.2, 1e-6, 1e-2, 1)
        rng = np.random.default_rng(1)
        report = gradient_inversion_study(
            model,
            dataset,
            mechanism,
            parameters=0.1 * rng.standard_normal(model.dimension),
            g_max=1e-2,
            num_trials=60,
            seed=0,
        )
        assert report.noisy_median_error > 10 * report.clean_median_error
        assert report.protection_factor > 10

    def test_clean_reconstruction_is_tight(self):
        dataset = make_phishing_dataset(seed=0, num_points=300, num_features=10)
        model = LogisticRegressionModel(10, loss_kind="mse")
        mechanism = GaussianMechanism.for_clipped_gradients(0.2, 1e-6, 1e-2, 1)
        rng = np.random.default_rng(2)
        report = gradient_inversion_study(
            model,
            dataset,
            mechanism,
            parameters=0.1 * rng.standard_normal(model.dimension),
            num_trials=60,
            seed=0,
        )
        assert report.clean_median_error < 1e-6


class TestGradientMoments:
    def test_mean_estimation_moments_known(self):
        """For Q(w) = 1/2 E||w - x||^2 with x ~ N(mean, (sigma^2/d) I):
        batch gradient at w has variance sigma^2 / b and mean w - x_bar."""
        d, sigma, b = 8, 1.0, 4
        dataset = make_gaussian_mean_dataset(d, 40_000, sigma=sigma, seed=0)
        model = MeanEstimationModel(d)
        w = np.full(d, 10.0)
        moments = estimate_gradient_moments(
            model, dataset, w, batch_size=b, num_samples=3000, seed=1
        )
        assert moments.total_variance == pytest.approx(sigma**2 / b, rel=0.1)
        expected_norm = float(np.linalg.norm(w - dataset.features.mean(axis=0)))
        assert moments.mean_norm == pytest.approx(expected_norm, rel=0.01)

    def test_dp_ratio_larger(self):
        d = 8
        dataset = make_gaussian_mean_dataset(d, 5000, seed=0)
        model = MeanEstimationModel(d)
        w = np.full(d, 5.0)
        moments = estimate_gradient_moments(model, dataset, w, 4, num_samples=200, seed=1)
        assert moments.dp_vn_ratio(d, 1.0, 0.2, 1e-6) > moments.vn_ratio

    def test_vn_ratio_for_model_wrapper(self):
        d = 4
        dataset = make_gaussian_mean_dataset(d, 2000, seed=0)
        model = MeanEstimationModel(d)
        w = np.full(d, 5.0)
        clean = vn_ratio_for_model(model, dataset, w, 4, num_samples=100, seed=2)
        noisy = vn_ratio_for_model(
            model, dataset, w, 4, g_max=1.0, epsilon=0.2, delta=1e-6,
            num_samples=100, seed=2,
        )
        assert noisy > clean

    def test_missing_dp_arguments_rejected(self):
        d = 4
        dataset = make_gaussian_mean_dataset(d, 100, seed=0)
        model = MeanEstimationModel(d)
        with pytest.raises(ConfigurationError):
            vn_ratio_for_model(
                model, dataset, np.ones(d), 4, epsilon=0.2, num_samples=10
            )

    def test_clipping_respected(self):
        d = 4
        dataset = make_gaussian_mean_dataset(d, 2000, seed=0)
        model = MeanEstimationModel(d)
        w = np.full(d, 100.0)  # enormous gradients
        moments = estimate_gradient_moments(
            model, dataset, w, 4, num_samples=100, g_max=0.01, seed=3
        )
        assert moments.mean_norm <= 0.01 * (1 + 1e-9)


class TestVarianceReduction:
    def test_no_momentum_no_change(self):
        assert momentum_vn_reduction_factor(0.0) == 1.0

    def test_paper_momentum_reduces_14x(self):
        """beta = 0.99 divides the stationary VN ratio by ~14.1."""
        factor = momentum_vn_reduction_factor(0.99)
        assert 1 / factor == pytest.approx(math.sqrt(1.99 / 0.01), rel=1e-6)
        assert 13.0 < 1 / factor < 15.0

    def test_monotone_in_beta(self):
        values = [momentum_vn_reduction_factor(b) for b in (0.0, 0.5, 0.9, 0.99)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_inflation_converges(self):
        limit = 1 / (1 - 0.9**2)
        assert momentum_variance_inflation(0.9, 10_000) == pytest.approx(limit)

    def test_inflation_starts_at_one(self):
        assert momentum_variance_inflation(0.9, 1) == pytest.approx(1.0)

    def test_empirical_stationary_variance(self):
        """Monte-Carlo check of the 1/(1-beta^2) variance formula."""
        beta, steps, runs = 0.9, 300, 2000
        rng = np.random.default_rng(0)
        noise = rng.standard_normal((runs, steps))
        velocity = np.zeros(runs)
        for t in range(steps):
            velocity = beta * velocity + noise[:, t]
        assert float(velocity.var()) == pytest.approx(1 / (1 - beta**2), rel=0.1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            momentum_vn_reduction_factor(1.0)
        with pytest.raises(ConfigurationError):
            momentum_variance_inflation(0.5, 0)
