"""Tests for the Theorem 1 convergence bounds."""

import math

import pytest

from repro.core.convergence import (
    TheoremOneBounds,
    effective_gradient_second_moment,
    gaussian_noise_sigma,
    theorem1_bounds,
    theorem1_lower_bound,
    theorem1_rate,
    theorem1_upper_bound,
)
from repro.exceptions import ResilienceError


class TestNoiseSigma:
    def test_matches_mechanism(self):
        from repro.privacy.mechanisms import GaussianMechanism

        mechanism = GaussianMechanism.for_clipped_gradients(0.2, 1e-6, 1e-2, 50)
        assert gaussian_noise_sigma(1e-2, 50, 0.2, 1e-6) == pytest.approx(mechanism.sigma)


class TestRate:
    def test_linear_in_d(self):
        assert theorem1_rate(200, 100, 10, 0.5, 1e-6) == pytest.approx(
            2 * theorem1_rate(100, 100, 10, 0.5, 1e-6)
        )

    def test_inverse_in_T(self):
        assert theorem1_rate(100, 400, 10, 0.5, 1e-6) == pytest.approx(
            0.25 * theorem1_rate(100, 100, 10, 0.5, 1e-6)
        )

    def test_inverse_square_in_b(self):
        assert theorem1_rate(100, 100, 20, 0.5, 1e-6) == pytest.approx(
            0.25 * theorem1_rate(100, 100, 10, 0.5, 1e-6)
        )

    def test_inverse_square_in_epsilon(self):
        assert theorem1_rate(100, 100, 10, 0.25, 1e-6) == pytest.approx(
            4 * theorem1_rate(100, 100, 10, 0.5, 1e-6)
        )


class TestUpperBound:
    COMMON = dict(T=1000, dimension=69, batch_size=50, sigma=0.1, g_max=1e-2)

    def test_decreases_in_T(self):
        a = theorem1_upper_bound(**{**self.COMMON, "T": 100})
        b = theorem1_upper_bound(**{**self.COMMON, "T": 1000})
        assert b < a

    def test_dp_free_bound_independent_of_d(self):
        """The paper's contrast: without DP noise the bound does not
        grow with the model size."""
        small = theorem1_upper_bound(**{**self.COMMON, "dimension": 10})
        large = theorem1_upper_bound(**{**self.COMMON, "dimension": 10_000_000})
        assert small == pytest.approx(large)

    def test_dp_bound_linear_in_d(self):
        noise = gaussian_noise_sigma(1e-2, 50, 0.2, 1e-6)
        kwargs = {**self.COMMON, "sigma": 0.0, "g_max": 0.0, "noise_sigma": noise}
        small = theorem1_upper_bound(**{**kwargs, "dimension": 100})
        large = theorem1_upper_bound(**{**kwargs, "dimension": 200})
        assert large == pytest.approx(2 * small)

    def test_alpha_inflates_bound(self):
        aligned = theorem1_upper_bound(**self.COMMON, alpha=0.0)
        tilted = theorem1_upper_bound(**self.COMMON, alpha=math.pi / 4)
        assert tilted > aligned

    def test_moment_term(self):
        assert effective_gradient_second_moment(
            sigma=0.2, batch_size=4, dimension=10, noise_sigma=0.3, g_max=0.5
        ) == pytest.approx(0.04 / 4 + 10 * 0.09 + 0.25)

    def test_validation(self):
        with pytest.raises(ResilienceError):
            theorem1_upper_bound(**{**self.COMMON, "alpha": math.pi / 2})
        with pytest.raises(ResilienceError):
            theorem1_upper_bound(**{**self.COMMON, "strong_convexity": 0.0})


class TestLowerBound:
    def test_formula(self):
        value = theorem1_lower_bound(
            T=100, dimension=10, batch_size=5, sigma=0.5, noise_sigma=0.2
        )
        assert value == pytest.approx((0.25 / 5 + 10 * 0.04) / 200)

    def test_dp_free_independent_of_d(self):
        small = theorem1_lower_bound(T=10, dimension=1, batch_size=5, sigma=0.5)
        large = theorem1_lower_bound(T=10, dimension=10**6, batch_size=5, sigma=0.5)
        assert small == pytest.approx(large)


class TestCombinedBounds:
    def test_lower_never_exceeds_upper(self):
        for d in (1, 69, 1000):
            for b in (1, 10, 500):
                for eps in (0.1, 0.5, None):
                    bounds = theorem1_bounds(
                        T=100,
                        dimension=d,
                        batch_size=b,
                        epsilon=eps,
                        delta=1e-6,
                        g_max=1e-2,
                        sigma=0.1,
                    )
                    assert bounds.lower <= bounds.upper

    def test_dp_widens_both_bounds(self):
        clean = theorem1_bounds(
            T=100, dimension=69, batch_size=50, epsilon=None, delta=1e-6,
            g_max=1e-2, sigma=0.1,
        )
        noisy = theorem1_bounds(
            T=100, dimension=69, batch_size=50, epsilon=0.2, delta=1e-6,
            g_max=1e-2, sigma=0.1,
        )
        assert noisy.upper > clean.upper
        assert noisy.lower > clean.lower
        assert noisy.noise_sigma > 0
        assert clean.noise_sigma == 0

    def test_inconsistent_bounds_rejected(self):
        with pytest.raises(ResilienceError):
            TheoremOneBounds(upper=1.0, lower=2.0, noise_sigma=0.0)

    def test_width_property(self):
        bounds = TheoremOneBounds(upper=4.0, lower=2.0, noise_sigma=0.0)
        assert bounds.width == pytest.approx(2.0)

    def test_rate_matches_bounds_scaling(self):
        """Both bounds, at large d, scale like the Theta rate in d."""
        def lower_at(d):
            return theorem1_bounds(
                T=100, dimension=d, batch_size=50, epsilon=0.2, delta=1e-6,
                g_max=1e-2, sigma=0.0,
            ).lower

        assert lower_at(2000) == pytest.approx(2 * lower_at(1000))
        assert theorem1_rate(2000, 100, 50, 0.2, 1e-6) == pytest.approx(
            2 * theorem1_rate(1000, 100, 50, 0.2, 1e-6)
        )
