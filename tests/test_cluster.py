"""Tests for the synchronous cluster driver."""

import numpy as np
import pytest

from repro.attacks import get_attack
from repro.data.batching import BatchSampler
from repro.data.datasets import Dataset
from repro.distributed.cluster import Cluster
from repro.distributed.server import ParameterServer
from repro.distributed.worker import HonestWorker
from repro.exceptions import ConfigurationError
from repro.gars import get_gar
from repro.models.linear import LinearRegressionModel
from repro.optim.sgd import SGDOptimizer
from repro.rng import SeedTree


def build_cluster(
    n=7,
    f=2,
    num_byzantine=2,
    gar="median",
    attack="little",
    seed=0,
    g_max=None,
):
    seeds = SeedTree(seed)
    rng = np.random.default_rng(1)
    dataset = Dataset(features=rng.standard_normal((60, 3)), labels=rng.standard_normal(60))
    model = LinearRegressionModel(3)
    workers = [
        HonestWorker(
            worker_id=i,
            model=model,
            sampler=BatchSampler(dataset, 8, seeds.generator("batch", i)),
            noise_rng=seeds.generator("noise", i),
            g_max=g_max,
        )
        for i in range(n - num_byzantine)
    ]
    server = ParameterServer(
        initial_parameters=np.zeros(model.dimension),
        gar=get_gar(gar, n, f),
        optimizer=SGDOptimizer(0.1),
    )
    resolved_attack = get_attack(attack) if attack else None
    return Cluster(
        server=server,
        honest_workers=workers,
        num_byzantine=num_byzantine,
        attack=resolved_attack,
        attack_rng=seeds.generator("attack") if resolved_attack else None,
    )


class TestClusterConstruction:
    def test_worker_count_must_match_gar(self):
        seeds = SeedTree(0)
        rng = np.random.default_rng(1)
        dataset = Dataset(
            features=rng.standard_normal((20, 3)), labels=np.zeros(20)
        )
        model = LinearRegressionModel(3)
        workers = [
            HonestWorker(
                worker_id=i,
                model=model,
                sampler=BatchSampler(dataset, 4, seeds.generator("b", i)),
                noise_rng=seeds.generator("n", i),
            )
            for i in range(3)
        ]
        server = ParameterServer(
            initial_parameters=np.zeros(4),
            gar=get_gar("median", 8, 3),  # expects 8 workers, gets 3
            optimizer=SGDOptimizer(0.1),
        )
        with pytest.raises(ConfigurationError, match="n=8"):
            Cluster(server=server, honest_workers=workers)

    def test_byzantine_requires_attack(self):
        with pytest.raises(ConfigurationError, match="requires an attack"):
            build_cluster(attack=None)

    def test_byzantine_cannot_exceed_f(self):
        with pytest.raises(ConfigurationError, match="tolerates"):
            build_cluster(n=7, f=1, num_byzantine=2)

    def test_attack_requires_rng(self):
        seeds = SeedTree(0)
        rng = np.random.default_rng(1)
        dataset = Dataset(features=rng.standard_normal((20, 3)), labels=np.zeros(20))
        model = LinearRegressionModel(3)
        workers = [
            HonestWorker(
                worker_id=0,
                model=model,
                sampler=BatchSampler(dataset, 4, seeds.generator("b")),
                noise_rng=seeds.generator("n"),
            )
        ]
        server = ParameterServer(
            initial_parameters=np.zeros(4),
            gar=get_gar("median", 2, 0),
            optimizer=SGDOptimizer(0.1),
        )
        with pytest.raises(ConfigurationError, match="attack_rng"):
            Cluster(
                server=server,
                honest_workers=workers,
                num_byzantine=1,
                attack=get_attack("zero"),
            )

    def test_properties(self):
        cluster = build_cluster()
        assert cluster.n == 7
        assert cluster.num_honest == 5
        assert cluster.num_byzantine == 2


class TestClusterStepping:
    def test_step_result_shapes(self):
        cluster = build_cluster()
        result = cluster.step()
        assert result.step == 1
        assert result.honest_submitted.shape == (5, 4)
        assert result.honest_clean.shape == (5, 4)
        assert result.byzantine_gradient.shape == (4,)
        assert result.num_honest == 5

    def test_no_attack_no_byzantine_gradient(self):
        cluster = build_cluster(num_byzantine=0, n=5, attack=None)
        result = cluster.step()
        assert result.byzantine_gradient is None

    def test_byzantine_gradient_matches_attack_formula(self):
        cluster = build_cluster(attack="little")
        result = cluster.step()
        honest = result.honest_submitted
        expected = honest.mean(axis=0) - 1.5 * honest.std(axis=0)
        assert np.allclose(result.byzantine_gradient, expected)

    def test_parameters_change_after_step(self):
        cluster = build_cluster()
        before = cluster.parameters
        cluster.step()
        assert not np.allclose(before, cluster.parameters)

    def test_run_counts_steps(self):
        cluster = build_cluster()
        result = cluster.run(5)
        assert result.step == 5
        assert cluster.step_count == 5

    def test_run_validates_steps(self):
        with pytest.raises(ConfigurationError):
            build_cluster().run(0)

    def test_deterministic_given_seed(self):
        a = build_cluster(seed=42)
        b = build_cluster(seed=42)
        a.run(3)
        b.run(3)
        assert np.array_equal(a.parameters, b.parameters)

    def test_different_seeds_differ(self):
        a = build_cluster(seed=1)
        b = build_cluster(seed=2)
        a.run(3)
        b.run(3)
        assert not np.array_equal(a.parameters, b.parameters)
