"""Tests for the ``python -m repro campaign`` subcommand."""

import json

import pytest

from repro.campaign.store import ResultStore
from repro.experiments.cli import build_parser, main

MATRIX = {
    "name": "cli-campaign",
    "model": {"name": "logistic", "loss_kind": "mse"},
    "data_seed": 0,
    "base": {
        "num_steps": 2,
        "n": 3,
        "f": 1,
        "batch_size": 5,
        "eval_every": 1,
        "seeds": [1, 2],
    },
    "axes": {"gar": ["mda", "median"]},
    "report": {"rows": "gar", "cols": "attack", "metrics": ["final_accuracy"]},
}


@pytest.fixture()
def matrix_path(tmp_path):
    path = tmp_path / "matrix.json"
    path.write_text(json.dumps(MATRIX))
    return path


class TestParser:
    def test_defaults(self):
        arguments = build_parser().parse_args(["campaign", "matrix.json"])
        assert arguments.command == "campaign"
        assert str(arguments.store) == "campaign-store"
        assert arguments.max_workers is None
        assert not arguments.smoke
        assert not arguments.dry_run
        assert not arguments.report

    def test_requires_matrix(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign"])


class TestCampaignCommand:
    def test_dry_run_executes_nothing(self, matrix_path, tmp_path, capsys):
        store_dir = tmp_path / "store"
        code = main(
            ["campaign", str(matrix_path), "--store", str(store_dir), "--dry-run"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "4 pending run(s)" in output
        assert output.count("miss") == 4
        assert len(ResultStore(store_dir)) == 0

    def test_run_then_warm_cache(self, matrix_path, tmp_path, capsys):
        store_dir = tmp_path / "store"
        assert main(["campaign", str(matrix_path), "--store", str(store_dir)]) == 0
        first = capsys.readouterr().out
        assert "4 run(s) executed" in first
        assert "=== campaign cli-campaign ===" in first
        assert "final_accuracy grid" in first
        assert len(ResultStore(store_dir)) == 4

        assert main(["campaign", str(matrix_path), "--store", str(store_dir)]) == 0
        second = capsys.readouterr().out
        assert "0 run(s) executed, 4 cached" in second

    def test_interrupted_report_matches_uninterrupted(
        self, matrix_path, tmp_path, capsys, monkeypatch
    ):
        """The CLI-level resume contract: a report rendered after a kill
        + re-invocation equals the single-shot report byte for byte."""
        import repro.campaign.runner as runner_module

        first_dir, second_dir = tmp_path / "interrupted", tmp_path / "clean"
        real_execute = runner_module.execute_cell
        budget = {"left": 2}

        def flaky_execute(job):
            if budget["left"] <= 0:
                raise KeyboardInterrupt  # simulated ^C mid-campaign
            budget["left"] -= 1
            return real_execute(job)

        monkeypatch.setattr(runner_module, "execute_cell", flaky_execute)
        with pytest.raises(KeyboardInterrupt):
            main(["campaign", str(matrix_path), "--store", str(first_dir)])
        monkeypatch.undo()
        capsys.readouterr()
        assert len(ResultStore(first_dir)) == 2

        first_out = tmp_path / "resumed.txt"
        second_out = tmp_path / "clean.txt"
        assert main(
            ["campaign", str(matrix_path), "--store", str(first_dir),
             "--output", str(first_out)]
        ) == 0
        assert "2 run(s) executed, 2 cached" in capsys.readouterr().out
        assert main(
            ["campaign", str(matrix_path), "--store", str(second_dir),
             "--output", str(second_out)]
        ) == 0
        assert first_out.read_bytes() == second_out.read_bytes()

    def test_smoke_uses_distinct_keys(self, tmp_path, capsys):
        # num_steps > 5, so the smoke trim changes the configs and their
        # keys: a smoke pass must not pollute the full campaign's cache.
        document = dict(MATRIX, base=dict(MATRIX["base"], num_steps=8))
        path = tmp_path / "matrix.json"
        path.write_text(json.dumps(document))
        store_dir = tmp_path / "store"
        assert main(["campaign", str(path), "--store", str(store_dir), "--smoke"]) == 0
        capsys.readouterr()
        # The full-size campaign still sees a cold cache.
        assert main(["campaign", str(path), "--store", str(store_dir), "--dry-run"]) == 0
        assert "4 pending run(s)" in capsys.readouterr().out
        # ... while the smoke campaign itself is warm.
        assert main(
            ["campaign", str(path), "--store", str(store_dir), "--smoke", "--dry-run"]
        ) == 0
        assert "0 pending run(s), 2 cached" in capsys.readouterr().out

    def test_report_only_on_empty_store(self, matrix_path, tmp_path, capsys):
        code = main(
            ["campaign", str(matrix_path), "--store", str(tmp_path / "s"), "--report"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "0/4 completed" in output
        assert "pending" in output

    def test_report_writes_output_file(self, matrix_path, tmp_path):
        store_dir = tmp_path / "store"
        target = tmp_path / "report.txt"
        assert main(
            ["campaign", str(matrix_path), "--store", str(store_dir),
             "--output", str(target)]
        ) == 0
        text = target.read_text()
        assert "cli-campaign" in text
        assert "gar=mda" in text

    def test_max_workers_matches_serial(self, matrix_path, tmp_path, capsys):
        serial_dir, parallel_dir = tmp_path / "serial", tmp_path / "parallel"
        serial_out, parallel_out = tmp_path / "s.txt", tmp_path / "p.txt"
        assert main(
            ["campaign", str(matrix_path), "--store", str(serial_dir),
             "--output", str(serial_out)]
        ) == 0
        assert main(
            ["campaign", str(matrix_path), "--store", str(parallel_dir),
             "--max-workers", "2", "--output", str(parallel_out)]
        ) == 0
        assert serial_out.read_bytes() == parallel_out.read_bytes()


class TestCampaignErrors:
    def test_missing_matrix_file_exits_2(self, tmp_path, capsys):
        assert main(["campaign", str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_malformed_json_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{oops")
        assert main(["campaign", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_matrix_key_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(dict(MATRIX, grids=[1])))
        assert main(["campaign", str(path)]) == 2
        assert "unknown matrix keys" in capsys.readouterr().err

    def test_invalid_cell_config_exits_2(self, tmp_path, capsys):
        bad = dict(MATRIX, base=dict(MATRIX["base"], num_steps=0))
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(bad))
        assert main(["campaign", str(path)]) == 2
        assert "num_steps" in capsys.readouterr().err

    def test_unknown_component_exits_2(self, matrix_path, tmp_path, capsys):
        bad = dict(MATRIX, axes={"gar": ["not-a-gar"]})
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(bad))
        assert main(["campaign", str(path), "--store", str(tmp_path / "s")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_store_schema_mismatch_exits_2(self, matrix_path, tmp_path, capsys):
        store_dir = tmp_path / "store"
        store_dir.mkdir()
        (store_dir / "meta.json").write_text(json.dumps({"schema": "other/0"}))
        assert main(
            ["campaign", str(matrix_path), "--store", str(store_dir)]
        ) == 2
        assert "schema" in capsys.readouterr().err
