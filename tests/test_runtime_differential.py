"""Differential suite: multiprocess backend ≡ in-process engine, bit for bit.

Three layers of evidence, strongest last:

1. **per-round**: identically-seeded in-process and multiprocess
   clusters are stepped side by side and every round's submitted
   matrix, clean matrix, aggregate and post-step parameters must be
   *exactly* equal — across GAR × attack × DP × momentum and a lossy
   network;
2. **end-to-end**: ``Experiment.run`` under both backends produces
   equal loss curves, accuracy curves and final parameters (this also
   pins the chief-side honest-loss routing);
3. **golden replay**: the committed ``tests/golden/traces.json`` —
   recorded by the in-process engine — replays bit-identically through
   the multiprocess backend, tying the new runtime to the repository's
   long-lived reference traces.

Equality is ``tolist()`` equality of float64 values, i.e. equality of
bits; no tolerances anywhere.
"""

import json

import pytest

from repro.campaign.store import cell_key
from repro.data.phishing import make_phishing_dataset
from repro.experiments.config import ExperimentConfig
from repro.models.logistic import LogisticRegressionModel
from repro.pipeline.builder import Experiment

from tests.test_golden_traces import CASES as GOLDEN_CASES
from tests.test_golden_traces import GOLDEN_PATH

#: name -> Experiment overrides.  krum/average × DP on/off × momentum
#: on/off (the issue's floor), plus laplace noise, server momentum and
#: a lossy network.
DIFFERENTIAL_CELLS = {
    "krum-little-dp-momentum": dict(gar="krum", attack="little", f=3, epsilon=0.5),
    "krum-little-dp-nomomentum": dict(
        gar="krum", attack="little", f=3, epsilon=0.5, momentum=0.0
    ),
    "krum-little-nodp-momentum": dict(gar="krum", attack="little", f=3),
    "krum-little-nodp-nomomentum": dict(
        gar="krum", attack="little", f=3, momentum=0.0
    ),
    "average-dp-momentum": dict(gar="average", f=0, epsilon=0.5),
    "average-nodp-nomomentum": dict(gar="average", f=0, momentum=0.0),
    "krum-signflip-laplace": dict(
        gar="krum", attack="signflip", f=3, epsilon=1.0, noise_kind="laplace"
    ),
    "krum-little-dp-servermomentum": dict(
        gar="krum", attack="little", f=3, epsilon=0.5, momentum_at="server"
    ),
    "krum-little-dp-lossy": dict(
        gar="krum", attack="little", f=3, epsilon=0.5, drop_probability=0.3
    ),
}


def make_pair(overrides, num_shards=3):
    """Identically-seeded (in-process, multiprocess) experiments."""

    def build(**backend):
        settings = dict(
            model=LogisticRegressionModel(6),
            train_dataset=make_phishing_dataset(
                seed=0, num_points=150, num_features=6
            ),
            test_dataset=make_phishing_dataset(seed=1, num_points=40, num_features=6),
            num_steps=5,
            n=9,
            batch_size=10,
            eval_every=2,
            seed=11,
        )
        settings.update(overrides)
        settings.update(backend)
        return Experiment(**settings)

    return build(), build(backend="multiprocess", num_shards=num_shards)


@pytest.mark.parametrize("name", sorted(DIFFERENTIAL_CELLS))
def test_rounds_bit_identical(name):
    inprocess, multiprocess = make_pair(DIFFERENTIAL_CELLS[name])
    reference = inprocess.build_cluster()
    with multiprocess.build_multiprocess_cluster() as runtime:
        for _ in range(5):
            expected = reference.step()
            actual = runtime.step()
            assert actual.step == expected.step
            assert (
                actual.honest_submitted.tolist()
                == expected.honest_submitted.tolist()
            )
            assert actual.honest_clean.tolist() == expected.honest_clean.tolist()
            if expected.byzantine_gradient is None:
                assert actual.byzantine_gradient is None
            else:
                assert (
                    actual.byzantine_gradient.tolist()
                    == expected.byzantine_gradient.tolist()
                )
            assert actual.aggregated.tolist() == expected.aggregated.tolist()
            assert runtime.parameters.tolist() == reference.parameters.tolist()


@pytest.mark.parametrize(
    "name", ["krum-little-dp-momentum", "average-dp-momentum", "krum-little-dp-lossy"]
)
def test_experiment_run_bit_identical(name):
    inprocess, multiprocess = make_pair(DIFFERENTIAL_CELLS[name])
    expected = inprocess.run()
    actual = multiprocess.run()
    assert actual.history.loss_steps.tolist() == expected.history.loss_steps.tolist()
    assert actual.history.losses.tolist() == expected.history.losses.tolist()
    assert (
        actual.history.accuracies.tolist() == expected.history.accuracies.tolist()
    )
    assert (
        actual.final_parameters.tolist() == expected.final_parameters.tolist()
    )


def test_process_per_worker_matches_sharded():
    """The shard layout is invisible: 1, 3 or H shards, same bits."""
    overrides = DIFFERENTIAL_CELLS["krum-little-dp-momentum"]
    parameters = []
    for num_shards in (1, 3, None):  # None = process-per-worker
        _, multiprocess = make_pair(overrides, num_shards=num_shards)
        parameters.append(multiprocess.run().final_parameters.tolist())
    assert parameters[0] == parameters[1] == parameters[2]


@pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
def test_golden_traces_replay_through_multiprocess_backend(name):
    """The committed in-process golden traces hold under the new backend."""
    golden = json.loads(GOLDEN_PATH.read_text())[name]
    experiment = Experiment(
        model=LogisticRegressionModel(10),
        train_dataset=make_phishing_dataset(seed=0, num_points=240, num_features=10),
        test_dataset=make_phishing_dataset(seed=1, num_points=60, num_features=10),
        num_steps=6,
        batch_size=10,
        eval_every=3,
        seed=7,
        backend="multiprocess",
        num_shards=3,
        **GOLDEN_CASES[name],
    )
    result = experiment.run()
    assert [int(s) for s in result.history.loss_steps] == golden["loss_steps"]
    assert result.history.losses.tolist() == golden["losses"]
    assert (
        [int(s) for s in result.history.accuracy_steps] == golden["accuracy_steps"]
    )
    assert result.history.accuracies.tolist() == golden["accuracies"]
    assert result.final_parameters.tolist() == golden["final_parameters"]


def test_backend_fields_do_not_change_campaign_keys():
    """Bit-identity means the store must treat backends as one cell."""
    config = ExperimentConfig(
        name="cell", num_steps=5, n=9, f=3, gar="krum", attack="little", seeds=(1,)
    )
    multiprocess = config.with_updates(
        backend="multiprocess", num_shards=3, round_timeout=5.0
    )
    assert cell_key(config, seed=1) == cell_key(multiprocess, seed=1)
    assert "backend=multiprocess" in multiprocess.describe()
