"""Tests for the honest worker pipeline."""

import numpy as np
import pytest

from repro.data.batching import BatchSampler
from repro.data.datasets import Dataset
from repro.distributed.worker import HonestWorker
from repro.exceptions import ConfigurationError
from repro.models.linear import LinearRegressionModel
from repro.privacy.mechanisms import GaussianMechanism
from repro.rng import generator_from_seed


def make_worker(g_max=None, mechanism=None, clip_mode="batch", momentum=0.0, seed=0):
    rng = np.random.default_rng(3)
    dataset = Dataset(features=rng.standard_normal((50, 4)), labels=rng.standard_normal(50))
    model = LinearRegressionModel(4)
    sampler = BatchSampler(dataset, 10, generator_from_seed(seed))
    worker = HonestWorker(
        worker_id=0,
        model=model,
        sampler=sampler,
        noise_rng=generator_from_seed(seed + 100),
        g_max=g_max,
        mechanism=mechanism,
        clip_mode=clip_mode,
        momentum=momentum,
    )
    return worker, model


class TestHonestWorker:
    def test_no_dp_submitted_equals_clean(self):
        worker, model = make_worker()
        submission = worker.compute(np.zeros(model.dimension), 1)
        assert np.array_equal(submission.submitted, submission.clean)

    def test_clipping_enforced(self):
        worker, model = make_worker(g_max=1e-3)
        w = 100.0 * np.ones(model.dimension)  # big residuals -> big gradient
        submission = worker.compute(w, 1)
        assert np.linalg.norm(submission.clean) <= 1e-3 * (1 + 1e-9)

    def test_noise_applied_when_mechanism_present(self):
        mechanism = GaussianMechanism.for_clipped_gradients(0.5, 1e-6, 0.01, 10)
        worker, model = make_worker(g_max=0.01, mechanism=mechanism)
        submission = worker.compute(np.zeros(model.dimension), 1)
        assert not np.array_equal(submission.submitted, submission.clean)

    def test_mechanism_requires_g_max(self):
        mechanism = GaussianMechanism.for_clipped_gradients(0.5, 1e-6, 0.01, 10)
        with pytest.raises(ConfigurationError, match="g_max"):
            make_worker(mechanism=mechanism)

    def test_clean_view_never_contains_noise(self):
        mechanism = GaussianMechanism.for_clipped_gradients(0.5, 1e-6, 0.01, 10)
        noisy_worker, model = make_worker(g_max=0.01, mechanism=mechanism, seed=7)
        plain_worker, _ = make_worker(g_max=0.01, seed=7)
        noisy = noisy_worker.compute(np.zeros(model.dimension), 1)
        plain = plain_worker.compute(np.zeros(model.dimension), 1)
        assert np.allclose(noisy.clean, plain.clean)

    def test_per_example_mode_bounds_gradient(self):
        worker, model = make_worker(g_max=1e-3, clip_mode="per_example")
        w = 100.0 * np.ones(model.dimension)
        submission = worker.compute(w, 1)
        # Mean of per-example-clipped gradients is itself bounded.
        assert np.linalg.norm(submission.clean) <= 1e-3 * (1 + 1e-9)

    def test_invalid_clip_mode(self):
        with pytest.raises(ConfigurationError, match="clip_mode"):
            make_worker(clip_mode="magic")

    def test_invalid_momentum(self):
        with pytest.raises(ConfigurationError, match="momentum"):
            make_worker(momentum=1.0)

    def test_last_batch_recorded(self):
        worker, model = make_worker()
        assert worker.last_batch is None
        worker.compute(np.zeros(model.dimension), 1)
        features, labels = worker.last_batch
        assert features.shape == (10, 4)
        assert labels.shape == (10,)

    def test_momentum_accumulates_submissions(self):
        """With momentum m the submission is sum of m^k past gradients."""
        worker, model = make_worker(momentum=0.5, seed=11)
        reference, _ = make_worker(momentum=0.0, seed=11)
        w = np.zeros(model.dimension)
        expected = np.zeros(model.dimension)
        for step in range(1, 4):
            gradient = reference.compute(w, step).clean
            expected = 0.5 * expected + gradient
            submitted = worker.compute(w, step).submitted
            assert np.allclose(submitted, expected)

    def test_momentum_submission_can_exceed_g_max(self):
        """The momentum buffer is NOT re-clipped (it can reach
        G_max / (1 - m)); only the per-step gradient is clipped."""
        worker, model = make_worker(g_max=1e-4, momentum=0.9)
        w = 100.0 * np.ones(model.dimension)
        last = None
        for step in range(1, 60):
            last = worker.compute(w, step)
        assert np.linalg.norm(last.submitted) > 1e-4

    def test_reset_clears_state(self):
        worker, model = make_worker(momentum=0.9)
        worker.compute(np.zeros(model.dimension), 1)
        worker.reset()
        assert worker.last_batch is None

    def test_uses_dp_property(self):
        mechanism = GaussianMechanism.for_clipped_gradients(0.5, 1e-6, 0.01, 10)
        with_dp, _ = make_worker(g_max=0.01, mechanism=mechanism)
        without, _ = make_worker()
        assert with_dp.uses_dp
        assert not without.uses_dp

    def test_deterministic_given_seeds(self):
        a, model = make_worker(seed=9)
        b, _ = make_worker(seed=9)
        w = np.ones(model.dimension)
        assert np.array_equal(a.compute(w, 1).submitted, b.compute(w, 1).submitted)
