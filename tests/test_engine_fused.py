"""The fused round engine: bit-identity, routing, fallbacks, recording.

The contract under test: executing rounds through
:class:`repro.distributed.engine.RoundEngine` is *bit-identical* to
per-round :meth:`Cluster.step` — same recorded losses, same final
parameters, same worker-visible state — across GARs, attacks, DP
mechanisms, momentum placements, lossy networks and sharded data; and
every configuration the fused pipeline does not cover falls back
per-round with identical results.  The committed golden traces replay
through the engine unmodified.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.data.phishing import make_phishing_dataset
from repro.distributed.cluster import StepResult
from repro.distributed.engine import RoundEngine
from repro.distributed.reference import (
    _reference_sigmoid,
    reference_training_rounds,
)
from repro.distributed.worker import HonestWorker
from repro.exceptions import ConfigurationError
from repro.metrics.history import TrainingHistory
from repro.models.logistic import LogisticRegressionModel, sigmoid
from repro.pipeline.builder import Experiment
from repro.pipeline.callbacks import (
    AccuracyCallback,
    Callback,
    CallbackList,
    EarlyStopping,
    StepResultRecorder,
)

GOLDEN_PATH = Path(__file__).parent / "golden" / "traces.json"


class _NoopCallback(Callback):
    """Forces the per-round path without requesting matrices."""

    needs_step_matrices = False


def _environment():
    train = make_phishing_dataset(seed=0, num_points=240, num_features=10)
    return LogisticRegressionModel(10), train


def _experiment(model, train, **overrides):
    base = dict(
        model=model,
        train_dataset=train,
        test_dataset=None,
        num_steps=7,
        batch_size=10,
        g_max=1e-2,
        seed=3,
    )
    base.update(overrides)
    return Experiment(**base)


CONFIGS = {
    "krum-little-gaussian-momentum": dict(
        gar="krum", attack="little", n=9, f=3, epsilon=0.5, momentum=0.99
    ),
    "median-empire-laplace": dict(
        gar="median", attack="empire", n=9, f=4, epsilon=1.0,
        noise_kind="laplace", momentum=0.0,
    ),
    "average-nodp-momentum": dict(
        gar="average", attack=None, n=5, f=0, epsilon=None, momentum=0.9
    ),
    "mda-signflip-lossy": dict(
        gar="mda", attack="signflip", n=7, f=2, epsilon=None,
        momentum=0.0, drop_probability=0.3,
    ),
    "geomedian-shards": dict(
        gar="geometric-median", attack="little", n=9, f=4, epsilon=0.2,
        momentum=0.99, data_distribution="iid-shards",
    ),
    "trimmedmean-server-momentum": dict(
        gar="trimmed-mean", attack=None, n=9, f=4, epsilon=0.3,
        momentum=0.5, momentum_at="server",
    ),
}


class TestFusedBitIdentity:
    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_fused_equals_per_round(self, name):
        model, train = _environment()
        fused = _experiment(model, train, **CONFIGS[name]).run()
        per_round = _experiment(model, train, **CONFIGS[name]).run(
            callbacks=[_NoopCallback()]
        )
        assert fused.history.losses.tolist() == per_round.history.losses.tolist()
        assert fused.history.loss_steps.tolist() == per_round.history.loss_steps.tolist()
        assert (
            fused.final_parameters.tolist() == per_round.final_parameters.tolist()
        )

    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_fused_equals_reference_loop(self, name):
        model, train = _environment()
        fused = _experiment(model, train, **CONFIGS[name]).run()
        reference = _experiment(model, train, **CONFIGS[name])
        cluster = reference.build_cluster()
        history = TrainingHistory()
        reference_training_rounds(cluster, model, history, 7)
        assert fused.history.losses.tolist() == history.losses.tolist()
        assert fused.final_parameters.tolist() == cluster.parameters.tolist()

    def test_worker_state_matches_after_run(self):
        """Momentum buffers and last batches line up with per-round."""
        model, train = _environment()
        spec = CONFIGS["krum-little-gaussian-momentum"]
        fused = _experiment(model, train, **spec)
        fused.run()
        per_round = _experiment(model, train, **spec)
        per_round.run(callbacks=[_NoopCallback()])
        for fused_worker, slow_worker in zip(
            fused.build_workers(), per_round.build_workers()
        ):
            assert (
                fused_worker._velocity_submitted.tolist()
                == slow_worker._velocity_submitted.tolist()
            )
            assert (
                fused_worker._velocity_clean.tolist()
                == slow_worker._velocity_clean.tolist()
            )
            assert (
                fused_worker.last_batch[0].tolist()
                == slow_worker.last_batch[0].tolist()
            )
            assert (
                fused_worker.last_batch[1].tolist()
                == slow_worker.last_batch[1].tolist()
            )

    def test_repeated_runs_identical(self):
        """Experiment.run through the engine is rebuild-stable."""
        model, train = _environment()
        experiment = _experiment(model, train, **CONFIGS["krum-little-gaussian-momentum"])
        first = experiment.run()
        second = experiment.run()
        assert first.history.losses.tolist() == second.history.losses.tolist()
        assert first.final_parameters.tolist() == second.final_parameters.tolist()


class TestGoldenTracesThroughEngine:
    """The committed golden traces replay through the fused engine.

    Accuracy entries are read-only observations of the parameters and
    need the (callback-driven) evaluation loop, so the fused replay
    checks the trace's losses and final parameters — the quantities the
    round pipeline itself produces — bit for bit, unmodified.
    """

    CASES = {
        "mda-little-gaussian": dict(
            gar="mda", attack="little", epsilon=0.5, noise_kind="gaussian", n=9, f=3
        ),
        "krum-signflip-nodp": dict(gar="krum", attack="signflip", n=9, f=3),
        "median-empire-laplace": dict(
            gar="median", attack="empire", epsilon=1.0, noise_kind="laplace", n=9, f=4
        ),
        "geomedian-little-gaussian": dict(
            gar="geometric-median", attack="little", epsilon=0.5,
            noise_kind="gaussian", n=9, f=4,
        ),
        "bulyan-zero-nodp": dict(gar="bulyan", attack="zero", n=11, f=2),
        "trimmedmean-noattack-gaussian": dict(
            gar="trimmed-mean", attack=None, epsilon=0.2, noise_kind="gaussian",
            n=9, f=4,
        ),
        "meamed-little-nodp-lossy": dict(
            gar="meamed", attack="little", n=9, f=4, drop_probability=0.3
        ),
    }

    @pytest.fixture(scope="class")
    def golden(self):
        assert GOLDEN_PATH.exists(), "golden traces fixture missing"
        return json.loads(GOLDEN_PATH.read_text())

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_trace_replays_bit_identically(self, name, golden):
        overrides = self.CASES[name]
        experiment = Experiment(
            model=LogisticRegressionModel(10),
            train_dataset=make_phishing_dataset(seed=0, num_points=240, num_features=10),
            test_dataset=None,  # no accuracy callback -> fused path
            num_steps=6,
            batch_size=10,
            eval_every=3,
            seed=7,
            **overrides,
        )
        cluster = experiment.build_cluster()
        assert cluster.engine.supports_fused
        result = experiment.run()
        expected = golden[name]
        assert [float(v) for v in result.history.losses] == expected["losses"]
        assert (
            [float(v) for v in result.final_parameters]
            == expected["final_parameters"]
        )

    def test_cases_cover_the_golden_fixture(self, golden):
        assert sorted(self.CASES) == sorted(golden)


class TestEligibilityFallbacks:
    def _cluster(self, **overrides):
        model, train = _environment()
        spec = dict(CONFIGS["krum-little-gaussian-momentum"])
        spec.update(overrides)
        return _experiment(model, train, **spec).build_cluster()

    def test_supported_on_the_stock_pipeline(self):
        engine = self._cluster().engine
        assert engine.supports_fused
        assert engine.fused_unsupported_reason is None

    def test_per_example_clipping_falls_back(self):
        engine = self._cluster(clip_mode="per_example").engine
        assert not engine.supports_fused
        assert "per-example" in engine.fused_unsupported_reason

    def test_worker_subclass_falls_back(self):
        from repro.data.batching import BatchSampler
        from repro.distributed.cluster import Cluster
        from repro.distributed.server import ParameterServer
        from repro.gars import get_gar
        from repro.optim.sgd import SGDOptimizer

        class CustomWorker(HonestWorker):
            def compute(self, parameters, step):
                return super().compute(parameters, step)

        model, train = _environment()
        rng = np.random.default_rng(0)
        workers = [
            CustomWorker(
                worker_id=i,
                model=model,
                sampler=BatchSampler(train, 10, np.random.default_rng(i)),
                noise_rng=np.random.default_rng(100 + i),
            )
            for i in range(3)
        ]
        server = ParameterServer(
            initial_parameters=np.zeros(model.dimension),
            gar=get_gar("average", 3, 0),
            optimizer=SGDOptimizer(0.5),
        )
        cluster = Cluster(server=server, honest_workers=workers)
        assert not cluster.engine.supports_fused
        assert "CustomWorker" in cluster.engine.fused_unsupported_reason
        with pytest.raises(ConfigurationError, match="fused execution unavailable"):
            cluster.engine.run(3)

    def test_custom_mechanism_privatize_falls_back(self):
        from repro.privacy.mechanisms import GaussianMechanism

        class OddMechanism(GaussianMechanism):
            def privatize(self, gradient, rng):
                return super().privatize(gradient, rng)

        model, train = _environment()
        experiment = _experiment(
            model, train, gar="average", attack=None, n=3, f=0, momentum=0.0
        )
        experiment.mechanism = OddMechanism(
            epsilon=0.5, delta=1e-6, l2_sensitivity=0.002
        )
        cluster = experiment.build_cluster()
        assert not cluster.engine.supports_fused
        assert "OddMechanism" in cluster.engine.fused_unsupported_reason

    def test_shared_rng_streams_fall_back(self):
        """A generator shared across consumed roles would be pre-drawn
        in a different order than per-round interleaving: no fusion."""
        from repro.data.batching import BatchSampler
        from repro.distributed.cluster import Cluster
        from repro.distributed.server import ParameterServer
        from repro.gars import get_gar
        from repro.optim.sgd import SGDOptimizer
        from repro.privacy.mechanisms import GaussianMechanism

        model, train = _environment()
        mechanism = GaussianMechanism(epsilon=0.5, delta=1e-6, l2_sensitivity=0.002)
        shared = np.random.default_rng(0)
        workers = [
            HonestWorker(
                worker_id=i,
                model=model,
                sampler=BatchSampler(train, 10, shared),
                noise_rng=shared,  # same stream as the sampler
                g_max=1e-2,
                mechanism=mechanism,
            )
            for i in range(3)
        ]
        server = ParameterServer(
            initial_parameters=np.zeros(model.dimension),
            gar=get_gar("average", 3, 0),
            optimizer=SGDOptimizer(0.5),
        )
        cluster = Cluster(server=server, honest_workers=workers)
        assert not cluster.engine.supports_fused
        assert "share RNG" in cluster.engine.fused_unsupported_reason

    def test_custom_optimizer_step_falls_back(self):
        """An optimizer overriding step() must not be bypassed by the
        in-place out= path (it might ignore or mishandle out=)."""
        from repro.optim.sgd import SGDOptimizer

        class ClampedSGD(SGDOptimizer):
            def step(self, parameters, gradient, out=None):
                updated = super().step(parameters, gradient)
                return np.clip(updated, -1.0, 1.0)

        model, train = _environment()
        experiment = _experiment(
            model, train, gar="average", attack=None, n=3, f=0, momentum=0.0
        )
        server = experiment.build_server()
        server._optimizer = ClampedSGD(2.0)
        cluster = experiment.build_cluster()
        assert not cluster.engine.supports_fused
        assert "ClampedSGD" in cluster.engine.fused_unsupported_reason

    def test_sample_noise_override_falls_back(self):
        """A mechanism overriding sample_noise must not inherit the
        vectorized block draw (it would fuse with *different* noise)."""
        from repro.privacy.mechanisms import GaussianMechanism

        class HalfNoise(GaussianMechanism):
            def sample_noise(self, dimension, rng):
                return 0.5 * super().sample_noise(dimension, rng)

        model, train = _environment()
        experiment = _experiment(
            model, train, gar="average", attack=None, n=3, f=0, momentum=0.0
        )
        experiment.mechanism = HalfNoise(epsilon=0.5, delta=1e-6, l2_sensitivity=0.002)
        cluster = experiment.build_cluster()
        assert not cluster.engine.supports_fused
        assert "sample_noise" in cluster.engine.fused_unsupported_reason
        # And the loop's fallback stays bit-identical to forced per-round.
        first = experiment.run()
        rebuilt = _experiment(
            model, train, gar="average", attack=None, n=3, f=0, momentum=0.0
        )
        rebuilt.mechanism = HalfNoise(epsilon=0.5, delta=1e-6, l2_sensitivity=0.002)
        second = rebuilt.run(callbacks=[_NoopCallback()])
        assert first.final_parameters.tolist() == second.final_parameters.tolist()

    def test_custom_block_override_is_trusted(self):
        """Overriding sample_noise_block itself owns the contract."""
        from repro.privacy.mechanisms import GaussianMechanism, NoiseMechanism

        class SequentialBlocks(GaussianMechanism):
            def sample_noise(self, dimension, rng):
                return 0.5 * super().sample_noise(dimension, rng)

            def sample_noise_block(self, rounds, dimension, rng):
                return NoiseMechanism.sample_noise_block(self, rounds, dimension, rng)

        model, train = _environment()
        experiment = _experiment(
            model, train, gar="average", attack=None, n=3, f=0, momentum=0.0
        )
        experiment.mechanism = SequentialBlocks(
            epsilon=0.5, delta=1e-6, l2_sensitivity=0.002
        )
        cluster = experiment.build_cluster()
        assert cluster.engine.supports_fused
        fused = experiment.run()
        rebuilt = _experiment(
            model, train, gar="average", attack=None, n=3, f=0, momentum=0.0
        )
        rebuilt.mechanism = SequentialBlocks(
            epsilon=0.5, delta=1e-6, l2_sensitivity=0.002
        )
        per_round = rebuilt.run(callbacks=[_NoopCallback()])
        assert (
            fused.final_parameters.tolist() == per_round.final_parameters.tolist()
        )

    def test_model_stack_override_falls_back(self):
        """A model subclass overriding gradient_stack must not fuse with
        the inherited single-pass implementation."""

        class Regularized(LogisticRegressionModel):
            def gradient_stack(self, parameters, features_stack, labels_stack):
                return super().gradient_stack(
                    parameters, features_stack, labels_stack
                ) + 0.01 * parameters

        _, train = _environment()
        model = Regularized(10)
        spec = dict(gar="average", attack=None, n=3, f=0, momentum=0.0, epsilon=None)
        cluster = _experiment(model, train, **spec).build_cluster()
        assert not cluster.engine.supports_fused
        assert "gradient_stack" in cluster.engine.fused_unsupported_reason
        fused_route = _experiment(model, train, **spec).run()
        per_round = _experiment(model, train, **spec).run(callbacks=[_NoopCallback()])
        assert (
            fused_route.final_parameters.tolist()
            == per_round.final_parameters.tolist()
        )

    def test_mismatched_probe_model_steps_per_round(self):
        """TrainingLoop with a probe model != cohort model must not fuse
        (the fused loss would come from the cohort's model)."""
        from repro.pipeline.loop import TrainingLoop

        model, train = _environment()
        spec = CONFIGS["krum-little-gaussian-momentum"]
        experiment = _experiment(model, train, **spec)
        cluster = experiment.build_cluster()
        probe = LogisticRegressionModel(10, loss_kind="nll")
        loop = TrainingLoop(cluster=cluster, model=probe)
        state = loop.run(4)
        assert state.step == 4
        # Losses were recorded with the probe model (per-round route).
        reference = _experiment(model, train, **spec)
        ref_cluster = reference.build_cluster()
        ref_loop = TrainingLoop(cluster=ref_cluster, model=probe, callbacks=[_NoopCallback()])
        ref_state = ref_loop.run(4)
        assert (
            state.history.losses.tolist() == ref_state.history.losses.tolist()
        )
        with pytest.raises(ConfigurationError, match="cohort"):
            cluster.engine.run(2, model=probe)

    def test_fallback_path_still_bit_identical(self):
        """per_example configs run per-round in both cases: identical."""
        model, train = _environment()
        spec = dict(CONFIGS["krum-little-gaussian-momentum"], clip_mode="per_example")
        first = _experiment(model, train, **spec).run()
        second = _experiment(model, train, **spec).run(callbacks=[_NoopCallback()])
        assert first.history.losses.tolist() == second.history.losses.tolist()
        assert first.final_parameters.tolist() == second.final_parameters.tolist()

    def test_run_validates_arguments(self):
        engine = self._cluster().engine
        with pytest.raises(ConfigurationError, match="num_rounds"):
            engine.run(0)
        with pytest.raises(ConfigurationError, match="block_size"):
            engine.run(3, block_size=0)


class TestRecordFlag:
    def test_engine_record_payloads(self):
        cluster = TestEligibilityFallbacks()._cluster()
        result = cluster.engine.run(3, record=True)
        assert result.recorded
        assert result.honest_submitted.shape == (6, 11)
        assert result.honest_clean.shape == (6, 11)
        assert result.step == 3

    def test_engine_default_omits_payloads(self):
        cluster = TestEligibilityFallbacks()._cluster()
        result = cluster.engine.run(3)
        assert not result.recorded
        assert result.honest_submitted is None
        assert result.honest_clean is None
        assert result.aggregated.shape == (11,)
        with pytest.raises(ConfigurationError, match="record=False"):
            result.num_honest

    def test_record_true_matrices_are_copies(self):
        cluster = TestEligibilityFallbacks()._cluster()
        first = cluster.engine.run(1, record=True)
        frozen = first.honest_submitted.copy()
        cluster.engine.run(1, record=True)
        assert first.honest_submitted.tolist() == frozen.tolist()

    def test_cluster_step_record_flag(self):
        cluster = TestEligibilityFallbacks()._cluster()
        with_payload = cluster.step()
        assert with_payload.recorded
        without = cluster.step(record=False)
        assert not without.recorded
        assert without.byzantine_gradient is not None

    def test_engine_blocks_match_single_block(self):
        model, train = _environment()
        spec = CONFIGS["krum-little-gaussian-momentum"]
        small = _experiment(model, train, **spec)
        chunked = small.build_cluster().engine.run(
            7, history=TrainingHistory(), block_size=3
        )
        big = _experiment(model, train, **spec)
        whole = big.build_cluster().engine.run(7, history=TrainingHistory())
        assert chunked.aggregated.tolist() == whole.aggregated.tolist()
        assert (
            small.build_server().parameters.tolist()
            == big.build_server().parameters.tolist()
        )


class TestCallbackRouting:
    def test_needs_step_matrices_defaults(self):
        assert Callback().needs_step_matrices
        assert StepResultRecorder().needs_step_matrices
        assert not AccuracyCallback.needs_step_matrices
        assert not EarlyStopping.needs_step_matrices

    def test_callback_list_any_logic(self):
        assert not CallbackList([_NoopCallback()]).needs_step_matrices
        assert CallbackList([_NoopCallback(), StepResultRecorder()]).needs_step_matrices
        assert not CallbackList().needs_step_matrices

    def test_matrix_callbacks_see_payloads(self):
        model, train = _environment()
        recorder = StepResultRecorder()
        _experiment(
            model, train, **CONFIGS["krum-little-gaussian-momentum"]
        ).run(callbacks=[recorder])
        assert len(recorder.results) == 7
        assert all(result.recorded for result in recorder.results)

    def test_lightweight_callbacks_skip_payloads(self):
        model, train = _environment()
        seen: list[StepResult] = []

        class Probe(Callback):
            needs_step_matrices = False

            def on_step_end(self, state, result):
                seen.append(result)

        _experiment(
            model, train, **CONFIGS["krum-little-gaussian-momentum"]
        ).run(callbacks=[Probe()])
        assert len(seen) == 7
        assert all(not result.recorded for result in seen)

    def test_run_record_override_forces_payloads(self):
        """A callback-free loop can still request the matrices."""
        from repro.pipeline.loop import TrainingLoop

        model, train = _environment()
        experiment = _experiment(model, train, **CONFIGS["krum-little-gaussian-momentum"])
        cluster = experiment.build_cluster()
        assert cluster.engine.supports_fused
        loop = TrainingLoop(cluster=cluster, model=model)
        state = loop.run(4, record=True)
        assert state.last_result.recorded
        assert state.last_result.honest_submitted.shape == (6, 11)

    def test_stateful_attack_sees_stable_contexts(self):
        """An attack retaining its context across rounds reads the same
        data on the fused and per-round paths (fresh copies per round)."""
        from repro.attacks.base import ByzantineAttack

        class Adaptive(ByzantineAttack):
            name = "adaptive-probe"

            def __init__(self):
                super().__init__("submitted")
                self._previous = None

            def craft(self, context):
                current = context.honest_submitted
                if self._previous is None:
                    crafted = current.mean(axis=0)
                else:
                    crafted = current.mean(axis=0) - self._previous.mean(axis=0)
                self._previous = current  # retained across rounds
                return crafted

        model, train = _environment()
        spec = dict(gar="krum", n=9, f=3, epsilon=0.5, momentum=0.99)
        fused = _experiment(model, train, attack=Adaptive(), **spec).run()
        per_round = _experiment(model, train, attack=Adaptive(), **spec).run(
            callbacks=[_NoopCallback()]
        )
        assert fused.history.losses.tolist() == per_round.history.losses.tolist()
        assert (
            fused.final_parameters.tolist() == per_round.final_parameters.tolist()
        )

    def test_accuracy_callback_results_identical_to_fused_losses(self):
        """A test set adds the accuracy callback (per-round path) but
        must not change the recorded losses or final parameters."""
        model, train = _environment()
        test = make_phishing_dataset(seed=1, num_points=60, num_features=10)
        spec = CONFIGS["krum-little-gaussian-momentum"]
        with_test = _experiment(model, train, test_dataset=test, **spec).run()
        fused = _experiment(model, train, **spec).run()
        assert with_test.history.losses.tolist() == fused.history.losses.tolist()
        assert (
            with_test.final_parameters.tolist() == fused.final_parameters.tolist()
        )
        assert len(with_test.history.accuracies) > 0


class TestSigmoidEquivalence:
    def test_matches_branchy_reference(self):
        rng = np.random.default_rng(0)
        z = np.concatenate(
            [
                rng.standard_normal(500) * 50,
                np.array([0.0, -0.0, 1e-300, -1e-300, 700.0, -700.0, np.inf, -np.inf]),
            ]
        )
        assert sigmoid(z).tolist() == _reference_sigmoid(z).tolist()


class TestSyncPolicyBufferReuse:
    def test_rounds_do_not_leak_between_each_other(self):
        from repro.simulation.policies import Arrival, SyncPolicy

        policy = SyncPolicy()
        policy.bind(n=3, num_honest=3, dimension=2)

        def arrival(round_index, worker, value):
            return Arrival(
                time=0.0,
                round_index=round_index,
                worker_id=worker,
                model_version=0,
                server_version=0,
                gradient=np.full(2, value),
            )

        policy.on_round_start(1, (0, 1, 2))
        assert policy.on_arrival(arrival(1, 0, 1.0)) is None
        assert policy.on_arrival(arrival(1, 1, 2.0)) is None
        first = policy.on_arrival(arrival(1, 2, 3.0))
        assert first is not None
        assert first.matrix.tolist() == [[1.0, 1.0], [2.0, 2.0], [3.0, 3.0]]
        assert first.arrived_workers == (0, 1, 2)

        # Second round reuses the buffer; only worker 1 participates.
        policy.on_round_start(2, (1,))
        second = policy.on_arrival(arrival(2, 1, 9.0))
        assert second is not None
        assert second.matrix.tolist() == [[0.0, 0.0], [9.0, 9.0], [0.0, 0.0]]
        assert second.arrived_workers == (1,)

    def test_double_open_rejected(self):
        from repro.simulation.policies import SyncPolicy

        policy = SyncPolicy()
        policy.bind(n=2, num_honest=2, dimension=1)
        policy.on_round_start(1, (0, 1))
        with pytest.raises(ConfigurationError, match="still waiting"):
            policy.on_round_start(2, (0, 1))


class TestDivergenceThroughEngine:
    def test_divergence_aborts_identically_mid_block(self):
        from repro.exceptions import AggregationError, TrainingError
        from repro.models.linear import LinearRegressionModel

        _, train = _environment()
        model = LinearRegressionModel(10)  # unclipped: genuinely explodes
        spec = dict(
            gar="average", attack=None, n=3, f=0, epsilon=None,
            momentum=0.0, learning_rate=1e12, g_max=None, num_steps=60,
        )
        with pytest.raises((TrainingError, AggregationError)) as fused_error:
            _experiment(model, train, **spec).run()
        with pytest.raises((TrainingError, AggregationError)) as slow_error:
            _experiment(model, train, **spec).run(callbacks=[_NoopCallback()])
        # The fused block aborts at the same round, for the same reason.
        assert type(fused_error.value) is type(slow_error.value)
