"""Tests for the high-level train() entry point."""

import numpy as np
import pytest

from repro.data.datasets import train_test_split
from repro.data.phishing import make_phishing_dataset
from repro.distributed.trainer import build_mechanism, train
from repro.exceptions import ConfigurationError
from repro.models.logistic import LogisticRegressionModel
from repro.privacy.mechanisms import GaussianMechanism, LaplaceMechanism
from repro.rng import generator_from_seed

# A small, fast environment shared by all trainer tests.
NUM_STEPS = 40


@pytest.fixture(scope="module")
def environment():
    dataset = make_phishing_dataset(seed=0, num_points=800, num_features=10)
    train_set, test_set = train_test_split(dataset, 600, generator_from_seed(1))
    model = LogisticRegressionModel(10, loss_kind="mse")
    return model, train_set, test_set


def run(environment, **kwargs):
    model, train_set, test_set = environment
    defaults = dict(
        model=model,
        train_dataset=train_set,
        test_dataset=test_set,
        num_steps=NUM_STEPS,
        n=7,
        f=3,
        gar="mda",
        batch_size=10,
        eval_every=20,
        seed=1,
    )
    defaults.update(kwargs)
    return train(**defaults)


class TestTrainBasics:
    def test_history_lengths(self, environment):
        result = run(environment)
        assert len(result.history.losses) == NUM_STEPS
        # Accuracy at step 0 plus every 20 steps.
        assert list(result.history.accuracy_steps) == [0, 20, 40]

    def test_final_parameters_shape(self, environment):
        model, _, _ = environment
        result = run(environment)
        assert result.final_parameters.shape == (model.dimension,)

    def test_loss_decreases_without_adversary(self, environment):
        result = run(environment, gar="average", f=0, num_steps=150)
        assert result.history.min_loss < 0.6 * result.history.losses[0]

    def test_deterministic_same_seed(self, environment):
        a = run(environment, seed=3)
        b = run(environment, seed=3)
        assert np.array_equal(a.final_parameters, b.final_parameters)
        assert np.array_equal(a.history.losses, b.history.losses)

    def test_different_seeds_differ(self, environment):
        a = run(environment, seed=3)
        b = run(environment, seed=4)
        assert not np.array_equal(a.final_parameters, b.final_parameters)

    def test_config_echo(self, environment):
        result = run(environment, attack="little", epsilon=0.5)
        assert result.config["gar"] == "mda"
        assert result.config["attack"] == "little"
        assert result.config["epsilon"] == 0.5
        assert result.config["num_byzantine"] == 3

    def test_no_test_set_no_accuracy(self, environment):
        result = run(environment, test_dataset=None)
        assert len(result.history.accuracies) == 0


class TestByzantineSemantics:
    def test_default_byzantine_count(self, environment):
        with_attack = run(environment, attack="little")
        assert with_attack.config["num_byzantine"] == 3
        without = run(environment)
        assert without.config["num_byzantine"] == 0

    def test_explicit_byzantine_count(self, environment):
        result = run(environment, attack="little", num_byzantine=1)
        assert result.config["num_byzantine"] == 1

    def test_byzantine_cannot_exceed_f(self, environment):
        with pytest.raises(ConfigurationError, match="num_byzantine"):
            run(environment, attack="little", num_byzantine=4)

    def test_average_gar_with_declared_f_allowed(self, environment):
        """The paper's averaging baseline keeps n workers, f=0 attackers."""
        result = run(environment, gar="average", f=0)
        assert result.config["gar"] == "average"

    def test_attack_object_accepted(self, environment):
        from repro.attacks import ALittleIsEnoughAttack

        result = run(environment, attack=ALittleIsEnoughAttack(factor=0.5))
        assert result.config["attack"] == "little"

    def test_attack_kwargs_with_object_rejected(self, environment):
        from repro.attacks import ALittleIsEnoughAttack

        with pytest.raises(ConfigurationError, match="attack_kwargs"):
            run(
                environment,
                attack=ALittleIsEnoughAttack(),
                attack_kwargs={"factor": 2.0},
            )

    def test_gar_instance_must_match_n_f(self, environment):
        from repro.gars import get_gar

        with pytest.raises(ConfigurationError, match="bound to"):
            run(environment, gar=get_gar("median", 9, 4))


class TestPrivacySemantics:
    def test_no_dp_no_report(self, environment):
        assert run(environment).privacy is None

    def test_dp_report_contents(self, environment):
        result = run(environment, epsilon=0.5, delta=1e-6)
        report = result.privacy
        assert report.per_step.epsilon == 0.5
        assert report.basic.epsilon == pytest.approx(0.5 * NUM_STEPS)
        assert report.rdp is not None
        assert report.rdp.epsilon < report.basic.epsilon
        assert "per-step" in report.summary()

    def test_dp_requires_g_max(self, environment):
        with pytest.raises(ConfigurationError, match="g_max"):
            run(environment, epsilon=0.5, g_max=None)

    def test_laplace_noise_kind(self, environment):
        result = run(environment, epsilon=0.5, noise_kind="laplace")
        assert result.privacy.rdp is None  # RDP tracking is Gaussian-only
        assert result.config["noise_kind"] == "laplace"

    def test_invalid_noise_kind(self, environment):
        with pytest.raises(ConfigurationError, match="noise_kind"):
            run(environment, epsilon=0.5, noise_kind="cauchy")

    def test_dp_changes_trajectory(self, environment):
        without = run(environment, seed=5)
        with_dp = run(environment, seed=5, epsilon=0.9)
        assert not np.allclose(without.final_parameters, with_dp.final_parameters)


class TestMomentumPlacement:
    def test_invalid_placement(self, environment):
        with pytest.raises(ConfigurationError, match="momentum_at"):
            run(environment, momentum_at="everywhere")

    def test_worker_and_server_differ_under_robust_gar(self, environment):
        worker_side = run(environment, momentum_at="worker", seed=6)
        server_side = run(environment, momentum_at="server", seed=6)
        assert not np.allclose(
            worker_side.final_parameters, server_side.final_parameters
        )

    def test_placement_equivalent_under_average(self, environment):
        """Averaging commutes with momentum, so the two placements give
        the same trajectory (same seeds, no DP)."""
        worker_side = run(environment, gar="average", f=0, momentum_at="worker", seed=7)
        server_side = run(environment, gar="average", f=0, momentum_at="server", seed=7)
        assert np.allclose(
            worker_side.final_parameters, server_side.final_parameters, atol=1e-10
        )


class TestMiscValidation:
    @pytest.mark.parametrize("kwargs", [
        {"num_steps": 0},
        {"eval_every": 0},
        {"num_byzantine": -1},
    ])
    def test_invalid_arguments(self, environment, kwargs):
        with pytest.raises(ConfigurationError):
            run(environment, **kwargs)

    def test_lossy_network_runs(self, environment):
        result = run(environment, drop_probability=0.2, gar="average", f=0)
        assert len(result.history.losses) == NUM_STEPS

    def test_record_gradients_flag(self, environment):
        result = run(environment, record_gradients=True)
        assert result.config["seed"] == 1  # smoke: flag does not break anything


class TestBuildMechanism:
    def test_gaussian(self):
        mechanism = build_mechanism("gaussian", 0.5, 1e-6, 0.01, 50, 69)
        assert isinstance(mechanism, GaussianMechanism)

    def test_laplace(self):
        mechanism = build_mechanism("laplace", 0.5, 1e-6, 0.01, 50, 69)
        assert isinstance(mechanism, LaplaceMechanism)

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            build_mechanism("uniform", 0.5, 1e-6, 0.01, 50, 69)
