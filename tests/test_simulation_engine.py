"""Unit tests for the discrete-event simulation subsystem."""

import numpy as np
import pytest

from repro.data.phishing import make_phishing_dataset
from repro.exceptions import ConfigurationError, TrainingError
from repro.models.logistic import LogisticRegressionModel
from repro.pipeline.builder import Experiment
from repro.pipeline.callbacks import StepResultRecorder
from repro.rng import SeedTree
from repro.simulation import (
    Arrival,
    AsyncStalenessPolicy,
    BufferedSemiSyncPolicy,
    ConstantLatency,
    EventQueue,
    FullParticipation,
    GradientArrival,
    LognormalLatency,
    ModelBroadcast,
    PoissonParticipation,
    SimStepResult,
    StragglerLatency,
    SyncPolicy,
    UniformParticipation,
    WorkerWake,
    make_participation,
)


def small_experiment(**overrides):
    defaults = dict(
        model=LogisticRegressionModel(6),
        train_dataset=make_phishing_dataset(seed=0, num_points=120, num_features=6),
        test_dataset=make_phishing_dataset(seed=1, num_points=40, num_features=6),
        num_steps=5,
        n=5,
        f=1,
        gar="median",
        attack="little",
        batch_size=10,
        eval_every=5,
        seed=3,
    )
    defaults.update(overrides)
    return Experiment(**defaults)


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        queue.push(WorkerWake(time=2.0, round_index=1, worker_id=0))
        queue.push(WorkerWake(time=1.0, round_index=1, worker_id=1))
        assert queue.pop().worker_id == 1
        assert queue.pop().worker_id == 0

    def test_ties_pop_in_push_order(self):
        queue = EventQueue()
        for worker in range(5):
            queue.push(WorkerWake(time=0.0, round_index=1, worker_id=worker))
        assert [queue.pop().worker_id for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_peek_and_len(self):
        queue = EventQueue()
        assert queue.peek() is None and len(queue) == 0 and not queue
        event = ModelBroadcast(time=0.0, round_index=1)
        queue.push(event)
        assert queue.peek() is event and len(queue) == 1 and queue

    def test_pop_empty_raises(self):
        with pytest.raises(ConfigurationError, match="empty"):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError, match=">= 0"):
            EventQueue().push(ModelBroadcast(time=-1.0, round_index=1))


class TestLatencyModels:
    def test_constant(self):
        model = ConstantLatency(2.5)
        rng = np.random.default_rng(0)
        assert model.sample(1, 0, rng) == 2.5
        with pytest.raises(ConfigurationError):
            ConstantLatency(-1.0)

    def test_lognormal_deterministic_per_stream(self):
        model = LognormalLatency(median=1.0, sigma=0.5)
        seeds = SeedTree(0)
        first = model.sample(3, 2, seeds.generator("latency", 3, 2))
        again = model.sample(3, 2, seeds.generator("latency", 3, 2))
        other = model.sample(3, 3, seeds.generator("latency", 3, 3))
        assert first == again
        assert first != other
        assert first > 0

    def test_lognormal_validation(self):
        with pytest.raises(ConfigurationError):
            LognormalLatency(median=0.0)
        with pytest.raises(ConfigurationError):
            LognormalLatency(sigma=-0.1)

    def test_straggler_fixed_workers_always_slow(self):
        model = StragglerLatency(
            base=1.0, slowdown=8.0, straggler_probability=0.0, straggler_workers=(2,)
        )
        rng = np.random.default_rng(0)
        assert model.sample(1, 2, rng) == 8.0
        assert model.sample(1, 0, rng) == 1.0

    def test_straggler_probabilistic_mixture(self):
        model = StragglerLatency(base=1.0, slowdown=5.0, straggler_probability=0.5)
        seeds = SeedTree(0)
        samples = {
            model.sample(r, 0, seeds.generator("latency", r, 0)) for r in range(40)
        }
        assert samples == {1.0, 5.0}

    def test_straggler_validation(self):
        with pytest.raises(ConfigurationError):
            StragglerLatency(slowdown=0.5)
        with pytest.raises(ConfigurationError):
            StragglerLatency(straggler_probability=1.5)


class TestParticipationSamplers:
    def test_full(self):
        sampler = FullParticipation()
        assert sampler.sample(1, (0, 1, 2), np.random.default_rng(0)) == (0, 1, 2)
        assert sampler.rate == 1.0

    def test_poisson_deterministic_per_round_stream(self):
        sampler = PoissonParticipation(0.5)
        seeds = SeedTree(9)
        first = sampler.sample(4, tuple(range(10)), seeds.generator("p", 4))
        again = sampler.sample(4, tuple(range(10)), seeds.generator("p", 4))
        assert first == again
        assert first  # never empty

    def test_poisson_fallback_never_empty(self):
        sampler = PoissonParticipation(1e-12)
        chosen = sampler.sample(1, (3, 4, 5), np.random.default_rng(0))
        assert chosen == (3,)  # lowest-indexed candidate

    def test_uniform_fixed_size(self):
        sampler = UniformParticipation(0.5)
        chosen = sampler.sample(1, tuple(range(10)), np.random.default_rng(0))
        assert len(chosen) == 5
        assert chosen == tuple(sorted(chosen))
        assert set(chosen) <= set(range(10))

    def test_uniform_rate_rounds_up_to_one(self):
        sampler = UniformParticipation(0.01)
        assert len(sampler.sample(1, tuple(range(4)), np.random.default_rng(0))) == 1

    def test_make_participation(self):
        assert isinstance(make_participation("poisson", 1.0), FullParticipation)
        assert isinstance(make_participation("poisson", 0.5), PoissonParticipation)
        assert isinstance(make_participation("uniform", 0.5), UniformParticipation)
        with pytest.raises(ConfigurationError):
            make_participation("bogus", 0.5)
        with pytest.raises(ConfigurationError):
            make_participation("poisson", 0.0)


def _arrival(worker, round_index=1, gradient=None, dropped=False, versions=(0, 0)):
    return Arrival(
        time=0.0,
        round_index=round_index,
        worker_id=worker,
        model_version=versions[0],
        server_version=versions[1],
        gradient=gradient if gradient is not None else np.full(3, float(worker + 1)),
        dropped=dropped,
    )


class TestSyncPolicy:
    def test_waits_for_all_expected(self):
        policy = SyncPolicy()
        policy.bind(n=4, num_honest=3, dimension=3)
        policy.on_round_start(1, (0, 1, 3))
        assert policy.on_arrival(_arrival(0)) is None
        assert policy.on_arrival(_arrival(3)) is None
        completion = policy.on_arrival(_arrival(1))
        assert completion is not None
        assert completion.arrived_workers == (0, 1, 3)
        # Non-participant (worker 2) is a zero row.
        assert np.all(completion.matrix[2] == 0.0)
        assert np.all(completion.matrix[0] == 1.0)
        assert completion.update_scale == 1.0
        assert completion.broadcast_to is None

    def test_unopened_round_rejected(self):
        policy = SyncPolicy()
        policy.bind(n=2, num_honest=2, dimension=3)
        with pytest.raises(ConfigurationError, match="unopened round"):
            policy.on_arrival(_arrival(0, round_index=7))


class TestBufferedSemiSyncPolicy:
    def test_completes_at_buffer_size(self):
        policy = BufferedSemiSyncPolicy(buffer_size=2)
        policy.bind(n=4, num_honest=4, dimension=3)
        policy.on_round_start(1, (0, 1, 2, 3))
        assert policy.on_arrival(_arrival(2)) is None
        completion = policy.on_arrival(_arrival(0))
        assert completion is not None
        assert completion.arrived_workers == (0, 2)
        assert np.all(completion.matrix[1] == 0.0)
        assert np.all(completion.matrix[3] == 0.0)

    def test_discards_stale_arrivals(self):
        policy = BufferedSemiSyncPolicy(buffer_size=1)
        policy.bind(n=2, num_honest=2, dimension=3)
        policy.on_round_start(1, (0, 1))
        assert policy.on_arrival(_arrival(0)) is not None
        policy.on_round_start(2, (0, 1))
        assert policy.on_arrival(_arrival(1, round_index=1)) is None  # late
        assert policy.stats() == {"stale_discarded": 1}

    def test_round_closes_permanently_on_completion(self):
        """Leftover arrivals of an aggregated round are stale even
        before the next round's broadcast is processed."""
        policy = BufferedSemiSyncPolicy(buffer_size=1)
        policy.bind(n=3, num_honest=3, dimension=3)
        policy.on_round_start(1, (0, 1, 2))
        assert policy.on_arrival(_arrival(0)) is not None
        # Same-round arrivals after the barrier closed must NOT re-fill
        # a fresh buffer and double-aggregate the round.
        assert policy.on_arrival(_arrival(1)) is None
        assert policy.on_arrival(_arrival(2)) is None
        assert policy.stats() == {"stale_discarded": 2}

    def test_buffer_capped_by_expected(self):
        policy = BufferedSemiSyncPolicy(buffer_size=10)
        policy.bind(n=3, num_honest=3, dimension=3)
        policy.on_round_start(1, (0, 2))
        assert policy.on_arrival(_arrival(0)) is None
        assert policy.on_arrival(_arrival(2)) is not None

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BufferedSemiSyncPolicy(buffer_size=0)


class TestAsyncStalenessPolicy:
    def test_aggregates_every_arrival_with_damping(self):
        policy = AsyncStalenessPolicy(damping="inverse")
        policy.bind(n=2, num_honest=2, dimension=3)
        completion = policy.on_arrival(_arrival(0, versions=(0, 3)))
        assert completion is not None
        assert completion.update_scale == pytest.approx(1.0 / 4.0)
        assert completion.staleness == 3.0
        assert completion.broadcast_to == (0,)
        assert np.all(completion.matrix[1] == 0.0)

    def test_cache_keeps_latest_gradient(self):
        policy = AsyncStalenessPolicy()
        policy.bind(n=2, num_honest=2, dimension=3)
        policy.on_arrival(_arrival(0, gradient=np.ones(3)))
        completion = policy.on_arrival(_arrival(1, gradient=np.full(3, 2.0)))
        assert np.all(completion.matrix[0] == 1.0)
        assert np.all(completion.matrix[1] == 2.0)

    def test_dropped_arrivals_skipped(self):
        policy = AsyncStalenessPolicy()
        policy.bind(n=2, num_honest=2, dimension=3)
        assert policy.on_arrival(_arrival(0, dropped=True)) is None
        assert policy.stats()["dropped_skipped"] == 1

    def test_damping_schemes(self):
        assert AsyncStalenessPolicy("exponential", alpha=0.5).weight(2) == 0.25
        assert AsyncStalenessPolicy("constant").weight(9) == 1.0
        with pytest.raises(ConfigurationError):
            AsyncStalenessPolicy("bogus")
        with pytest.raises(ConfigurationError):
            AsyncStalenessPolicy(alpha=0.0)


class TestSimulatorValidation:
    def test_policy_spec_validated_at_init(self):
        with pytest.raises(ConfigurationError, match="policy"):
            small_experiment(policy="bogus")

    def test_latency_spec_validated_at_init(self):
        with pytest.raises(ConfigurationError, match="latency"):
            small_experiment(latency="bogus")

    def test_participation_rate_validated(self):
        with pytest.raises(ConfigurationError, match="participation_rate"):
            small_experiment(participation_rate=0.0)

    def test_participation_kind_validated(self):
        with pytest.raises(ConfigurationError, match="participation_kind"):
            small_experiment(participation_kind="bogus")

    def test_latency_instance_type_validated(self):
        with pytest.raises(ConfigurationError, match="LatencyModel"):
            small_experiment(latency=42).build_simulation()

    def test_policy_instance_type_validated(self):
        with pytest.raises(ConfigurationError, match="ServerPolicy"):
            small_experiment(policy=42).build_simulation()


class TestSimulatorExecution:
    def test_constant_latency_advances_clock_one_round_trip_per_round(self):
        result = small_experiment(latency={"name": "constant", "delay": 2.0}).simulate()
        assert list(result.history.virtual_times) == [2.0, 4.0, 6.0, 8.0, 10.0]
        assert result.virtual_time == 10.0

    def test_semisync_tied_timestamps_aggregate_each_round_once(self):
        """Constant latency makes every arrival of a round simultaneous;
        each round must still complete exactly once, in order."""
        recorder = StepResultRecorder()
        result = small_experiment(
            num_steps=6,
            callbacks=[recorder],
            policy={"name": "semi-sync", "buffer_size": 2},
            latency={"name": "constant", "delay": 1.0},
        ).simulate()
        round_sequence = [r.round_index for r in recorder.results]
        assert round_sequence == [1, 2, 3, 4, 5, 6]
        # One round-trip per round; the leftover tied arrivals of each
        # closed round are discarded and counted (n=5 workers, 2 kept;
        # round 6's leftovers are still in-queue when the run ends).
        assert list(result.history.virtual_times) == [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        assert result.policy_stats["stale_discarded"] == 5 * 3

    def test_semisync_beats_sync_wall_clock_under_stragglers(self):
        latency = {
            "name": "straggler",
            "base": 1.0,
            "slowdown": 10.0,
            "straggler_probability": 0.0,
            "straggler_workers": [0],
        }
        sync = small_experiment(latency=latency).simulate()
        semi = small_experiment(
            latency=latency, policy={"name": "semi-sync", "buffer_size": 3}
        ).simulate()
        assert semi.virtual_time < sync.virtual_time

    def test_callbacks_receive_sim_step_results(self):
        recorder = StepResultRecorder()
        small_experiment(callbacks=[recorder]).simulate()
        assert len(recorder.results) == 5
        for result in recorder.results:
            assert isinstance(result, SimStepResult)
            assert result.virtual_time >= 0.0
            assert result.participating  # full participation

    def test_simulate_then_run_rebuilds_fresh(self):
        experiment = small_experiment()
        simulated = experiment.simulate()
        trained = experiment.run()
        # Sync policy at zero latency: the two executions are identical,
        # and the second run must not continue the first's state.
        assert list(simulated.history.losses) == list(trained.history.losses)

    def test_repeated_simulate_is_bit_identical(self):
        experiment = small_experiment(
            policy={"name": "semi-sync", "buffer_size": 3},
            latency={"name": "lognormal", "median": 1.0, "sigma": 0.5},
        )
        first = experiment.simulate()
        second = experiment.simulate()
        assert list(first.history.losses) == list(second.history.losses)
        assert list(first.final_parameters) == list(second.final_parameters)
        assert list(first.history.virtual_times) == list(second.history.virtual_times)

    def test_async_policy_counts_rounds_beyond_steps(self):
        result = small_experiment(
            policy="async-staleness",
            latency={"name": "lognormal", "median": 1.0, "sigma": 0.3},
        ).simulate()
        assert result.rounds >= 5
        assert "max_staleness" in result.policy_stats

    def test_lossy_simulation_counts_drops(self):
        result = small_experiment(
            num_steps=20, drop_probability=0.5, attack="zero"
        ).simulate()
        assert result.policy_stats["dropped_arrivals"] > 0

    def test_participation_counts_recorded(self):
        result = small_experiment(
            num_steps=20, participation_rate=0.5, participation_kind="uniform"
        ).simulate()
        rates = result.participation_rates
        assert set(rates) == {0, 1, 2, 3}  # n=5, f=1 -> 4 honest workers
        assert all(0.0 <= rate <= 1.0 for rate in rates.values())
        # Uniform sampling picks 2 of 4 each round.
        assert abs(sum(rates.values()) - 2.0) < 1e-9

    def test_async_survives_lossy_network(self):
        """A dropped async arrival must rewake its sender, not silence
        it: long lossy async runs complete instead of stalling."""
        result = small_experiment(
            num_steps=60,
            policy="async-staleness",
            drop_probability=0.3,
        ).simulate()
        assert result.policy_stats["dropped_arrivals"] > 0
        assert result.policy_stats["dropped_skipped"] > 0
        assert result.policy_stats["server_steps"] == 60

    def test_async_partial_participation_rejected(self):
        with pytest.raises(ConfigurationError, match="barrier"):
            small_experiment(
                policy="async-staleness", participation_rate=0.5
            )

    def test_async_per_worker_privacy_composes_over_invocations(self):
        """Non-barrier accounting must reflect actual mechanism calls,
        not the single sampled round (which would understate epsilon)."""
        result = small_experiment(
            num_steps=30, epsilon=0.5, policy="async-staleness"
        ).simulate()
        for worker, report in result.per_worker_privacy.items():
            # Every worker computed several noisy gradients: the budget
            # is a multiple of the per-step spend, unamplified.
            assert report.sampling_rate == 1.0
            assert report.basic.epsilon > report.per_step.epsilon
            assert report.basic.epsilon == pytest.approx(
                report.per_step.epsilon
                * round(report.basic.epsilon / report.per_step.epsilon)
            )

    def test_semisync_participating_is_arrived_set(self):
        """`participating` reports whose gradients fed the update, not
        the whole woken cohort."""
        recorder = StepResultRecorder()
        small_experiment(
            callbacks=[recorder],
            policy={"name": "semi-sync", "buffer_size": 2},
            latency={
                "name": "straggler",
                "base": 1.0,
                "slowdown": 50.0,
                "straggler_probability": 0.0,
                "straggler_workers": [0, 1],
            },
        ).simulate()
        for result in recorder.results:
            assert len(result.participating) <= 2
            assert 0 not in result.participating  # permanent straggler
            assert 1 not in result.participating

    def test_stalled_policy_raises_training_error(self):
        class NeverAggregates(SyncPolicy):
            def on_arrival(self, arrival):
                super().on_arrival(arrival)
                return None

        with pytest.raises(TrainingError, match="without a server update"):
            small_experiment(policy=NeverAggregates()).simulate()


class TestHistoryVirtualTimes:
    def test_round_trip(self):
        from repro.metrics.history import TrainingHistory

        history = TrainingHistory()
        history.record_loss(1, 0.5)
        history.record_virtual_time(1, 1.5)
        history.record_virtual_time(2, 2.5)
        restored = TrainingHistory.from_dict(history.to_dict())
        assert list(restored.virtual_times) == [1.5, 2.5]
        assert list(restored.virtual_time_steps) == [1, 2]
        assert restored.final_virtual_time == 2.5

    def test_legacy_payload_loads(self):
        from repro.metrics.history import TrainingHistory

        restored = TrainingHistory.from_dict(
            {"loss_steps": [1], "losses": [0.1], "accuracy_steps": [], "accuracies": []}
        )
        assert len(restored.virtual_times) == 0

    def test_monotonicity_enforced(self):
        from repro.metrics.history import TrainingHistory

        history = TrainingHistory()
        history.record_virtual_time(2, 1.0)
        with pytest.raises(ValueError, match="increasing"):
            history.record_virtual_time(2, 2.0)
        with pytest.raises(ValueError, match="decrease"):
            history.record_virtual_time(3, 0.5)


class TestNetworkPerMessageDeterminism:
    def test_decisions_independent_of_query_order(self):
        from repro.distributed.network import LossyNetwork

        forward = LossyNetwork(0.5, seed=123)
        backward = LossyNetwork(0.5, seed=123)
        messages = [(step, worker) for step in range(5) for worker in range(4)]
        first = {m: forward.drops_message(*m) for m in messages}
        second = {m: backward.drops_message(*m) for m in reversed(messages)}
        assert first == second
        assert any(first.values()) and not all(first.values())

    def test_deliver_matches_per_message_api(self):
        from repro.distributed.network import LossyNetwork

        network = LossyNetwork(0.5, seed=7)
        shadow = LossyNetwork(0.5, seed=7)
        gradients = np.ones((6, 3))
        delivered = network.deliver(gradients, step=2)
        expected = np.array([shadow.drops_message(2, w) for w in range(6)])
        assert np.array_equal(np.all(delivered == 0.0, axis=1), expected)

    def test_rng_seeding_is_one_draw(self):
        from repro.distributed.network import LossyNetwork

        first = LossyNetwork(0.3, np.random.default_rng(11))
        second = LossyNetwork(0.3, np.random.default_rng(11))
        assert [first.drops_message(0, w) for w in range(20)] == [
            second.drops_message(0, w) for w in range(20)
        ]

    def test_requires_rng_or_seed(self):
        from repro.distributed.network import LossyNetwork

        with pytest.raises(ConfigurationError, match="rng or seed"):
            LossyNetwork(0.3)
