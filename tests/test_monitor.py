"""Tests for the run-time VN-ratio monitor."""

import numpy as np
import pytest

from repro.analysis.monitor import VNRatioMonitor, VNTrajectory
from repro.data.batching import BatchSampler
from repro.data.datasets import train_test_split
from repro.data.phishing import make_phishing_dataset
from repro.distributed.cluster import Cluster
from repro.distributed.server import ParameterServer
from repro.distributed.trainer import build_mechanism
from repro.distributed.worker import HonestWorker
from repro.exceptions import ConfigurationError
from repro.gars import get_gar
from repro.models.logistic import LogisticRegressionModel
from repro.optim.sgd import SGDOptimizer
from repro.rng import SeedTree, generator_from_seed


def build_cluster(
    epsilon=None, batch_size=50, num_honest=6, n=11, f=5, seed=0, gar="mda"
):
    dataset = make_phishing_dataset(seed=0, num_points=2000, num_features=20)
    train_set, _ = train_test_split(dataset, 1500, generator_from_seed(1))
    model = LogisticRegressionModel(20, loss_kind="mse")
    seeds = SeedTree(seed)
    mechanism = None
    if epsilon is not None:
        mechanism = build_mechanism(
            "gaussian", epsilon, 1e-6, 1e-2, batch_size, model.dimension
        )
    workers = [
        HonestWorker(
            worker_id=index,
            model=model,
            sampler=BatchSampler(train_set, batch_size, seeds.generator("b", index)),
            noise_rng=seeds.generator("n", index),
            g_max=1e-2,
            mechanism=mechanism,
        )
        for index in range(num_honest)
    ]
    server = ParameterServer(
        initial_parameters=model.initial_parameters(),
        gar=get_gar(gar, n, f),
        optimizer=SGDOptimizer(2.0, momentum=0.0),
    )
    from repro.attacks import get_attack

    return Cluster(
        server=server,
        honest_workers=workers,
        num_byzantine=n - num_honest,
        attack=get_attack("little"),
        attack_rng=seeds.generator("attack"),
    )


class TestVNRatioMonitor:
    def test_records_each_round(self):
        cluster = build_cluster()
        monitor = VNRatioMonitor(cluster)
        for _ in range(10):
            monitor.observe(cluster.step())
        trajectory = monitor.trajectory
        assert len(trajectory.steps) == 10
        assert len(trajectory.clean_ratios) == 10

    def test_needs_two_honest(self):
        cluster = build_cluster(num_honest=1, n=6, f=5, gar="oracle")
        with pytest.raises(ConfigurationError, match="2 honest"):
            VNRatioMonitor(cluster)

    def test_clean_equals_submitted_without_dp(self):
        cluster = build_cluster(epsilon=None)
        monitor = VNRatioMonitor(cluster)
        for _ in range(5):
            monitor.observe(cluster.step())
        assert np.allclose(
            monitor.trajectory.clean_ratios, monitor.trajectory.submitted_ratios
        )

    def test_dp_inflates_submitted_ratio(self):
        """The empirical Eq. 8 effect: with the paper's b=50 noise the
        submitted ratio dwarfs the clean one."""
        cluster = build_cluster(epsilon=0.2)
        monitor = VNRatioMonitor(cluster)
        for _ in range(10):
            monitor.observe(cluster.step())
        trajectory = monitor.trajectory
        assert trajectory.median_ratio("submitted") > 3 * trajectory.median_ratio("clean")

    def test_dp_violates_k_f_every_round_at_b50(self):
        """At d=21, b=50, eps=0.2 the feasibility analysis says the VN
        condition cannot hold — the monitor should observe that."""
        cluster = build_cluster(epsilon=0.2)
        monitor = VNRatioMonitor(cluster)
        for _ in range(10):
            monitor.observe(cluster.step())
        assert monitor.trajectory.submitted_violation_fraction == 1.0

    def test_summary_renders(self):
        cluster = build_cluster()
        monitor = VNRatioMonitor(cluster)
        monitor.observe(cluster.step())
        text = monitor.trajectory.summary()
        assert "k_F" in text and "median" in text


class TestVNTrajectory:
    def test_violation_fractions(self):
        trajectory = VNTrajectory(
            steps=[1, 2, 3, 4],
            clean_ratios=[0.1, 0.2, 0.5, 0.6],
            submitted_ratios=[1.0, 2.0, 3.0, 0.1],
            k_f=0.42,
        )
        assert trajectory.clean_violation_fraction == pytest.approx(0.5)
        assert trajectory.submitted_violation_fraction == pytest.approx(0.75)

    def test_median(self):
        trajectory = VNTrajectory(
            steps=[1, 2, 3],
            clean_ratios=[0.1, 0.3, 0.2],
            submitted_ratios=[1.0, 3.0, 2.0],
            k_f=1.0,
        )
        assert trajectory.median_ratio("clean") == pytest.approx(0.2)
        assert trajectory.median_ratio("submitted") == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError, match="no rounds"):
            VNTrajectory(k_f=1.0).clean_violation_fraction
