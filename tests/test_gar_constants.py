"""Tests for the k_F(n, f) constants and preconditions (Appendix A)."""

import math

import pytest

from repro.exceptions import AggregationError
from repro.gars.constants import (
    k_bulyan,
    k_krum,
    k_mda,
    k_meamed,
    k_median,
    k_phocas,
    k_trimmed_mean,
    krum_eta,
    require_bulyan_valid,
    require_krum_valid,
    require_majority_honest,
)


class TestPreconditions:
    def test_majority(self):
        require_majority_honest(11, 5, "x")  # ok
        with pytest.raises(AggregationError):
            require_majority_honest(10, 5, "x")

    def test_krum(self):
        require_krum_valid(11, 4)  # 11 > 10
        with pytest.raises(AggregationError):
            require_krum_valid(11, 5)

    def test_bulyan(self):
        require_bulyan_valid(11, 2)  # 11 >= 11
        with pytest.raises(AggregationError):
            require_bulyan_valid(11, 3)

    def test_f_below_n_everywhere(self):
        with pytest.raises(AggregationError):
            require_majority_honest(3, 3, "x")


class TestFormulas:
    def test_mda_paper_values(self):
        # n=11, f=5: (11-5)/(sqrt(8)*5).
        assert k_mda(11, 5) == pytest.approx(6.0 / (math.sqrt(8) * 5))

    def test_mda_infinite_at_f0(self):
        assert k_mda(11, 0) == math.inf

    def test_krum_eta_formula(self):
        n, f = 11, 4
        expected = n - f + (f * (n - f - 2) + f**2 * (n - f - 1)) / (n - 2 * f - 2)
        assert krum_eta(n, f) == pytest.approx(expected)

    def test_krum_eta_exceeds_n_plus_f_squared(self):
        """The relaxation eta > n + f^2 used in Proposition 2's proof."""
        for n, f in [(11, 4), (15, 5), (23, 8), (9, 3)]:
            assert krum_eta(n, f) > n + f**2

    def test_krum_formula(self):
        assert k_krum(11, 4) == pytest.approx(1.0 / math.sqrt(2 * krum_eta(11, 4)))

    def test_bulyan_equals_krum_constant(self):
        assert k_bulyan(11, 2) == pytest.approx(k_krum(11, 2))

    def test_median_formula(self):
        assert k_median(11, 5) == pytest.approx(1.0 / math.sqrt(6))

    def test_meamed_formula(self):
        assert k_meamed(11, 5) == pytest.approx(1.0 / math.sqrt(60))

    def test_trimmed_mean_formula(self):
        n, f = 11, 5
        assert k_trimmed_mean(n, f) == pytest.approx(
            math.sqrt((n - 2 * f) ** 2 / (2 * (f + 1) * (n - f)))
        )

    def test_phocas_formula(self):
        n, f = 11, 5
        assert k_phocas(n, f) == pytest.approx(
            math.sqrt(4 + (n - 2 * f) ** 2 / (12 * (f + 1) * (n - f)))
        )


class TestOrderings:
    def test_mda_beats_distance_based_at_paper_setup(self):
        """Footnote 7: MDA has the largest tolerance among the
        distance/median-style GARs valid at n=11, f=5."""
        n, f = 11, 5
        mda = k_mda(n, f)
        assert mda > k_median(n, f)
        assert mda > k_meamed(n, f)
        assert mda > k_trimmed_mean(n, f)

    def test_mda_decreasing_in_f(self):
        values = [k_mda(11, f) for f in range(1, 6)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_median_increasing_in_f(self):
        """1/sqrt(n - f) grows with f — the formula conditions on fewer
        honest submissions, so the per-honest-gradient requirement
        loosens (contrast with MDA, which tightens)."""
        values = [k_median(11, f) for f in range(0, 6)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_meamed_below_median(self):
        """Meamed's constant is the median's divided by sqrt(10)."""
        assert k_meamed(11, 5) == pytest.approx(k_median(11, 5) / math.sqrt(10))
