"""Tests for privacy composition accountants and amplification."""

import math

import pytest

from repro.exceptions import PrivacyError
from repro.privacy.accountants import (
    AdvancedCompositionAccountant,
    BasicCompositionAccountant,
    RDPAccountant,
)
from repro.privacy.amplification import amplify_by_subsampling
from repro.privacy.mechanisms import GaussianMechanism


class TestBasicComposition:
    def test_linear(self):
        spend = BasicCompositionAccountant().compose(0.2, 1e-6, 1000)
        assert spend.epsilon == pytest.approx(200.0)
        assert spend.delta == pytest.approx(1e-3)

    def test_single_step_identity(self):
        spend = BasicCompositionAccountant().compose(0.3, 1e-6, 1)
        assert spend.epsilon == pytest.approx(0.3)
        assert spend.delta == pytest.approx(1e-6)

    def test_max_steps(self):
        accountant = BasicCompositionAccountant()
        assert accountant.max_steps(0.2, 1e-6, epsilon_budget=10.0) == 50

    def test_max_steps_zero_when_budget_tiny(self):
        assert BasicCompositionAccountant().max_steps(0.5, 1e-6, 0.1) == 0

    @pytest.mark.parametrize("steps", [0, -3])
    def test_steps_validated(self, steps):
        with pytest.raises(PrivacyError):
            BasicCompositionAccountant().compose(0.2, 1e-6, steps)

    def test_epsilon_validated(self):
        with pytest.raises(PrivacyError):
            BasicCompositionAccountant().compose(0.0, 1e-6, 10)


class TestAdvancedComposition:
    def test_beats_basic_for_many_steps(self):
        basic = BasicCompositionAccountant().compose(0.1, 1e-7, 10_000)
        advanced = AdvancedCompositionAccountant(slack_delta=1e-6).compose(
            0.1, 1e-7, 10_000
        )
        assert advanced.epsilon < basic.epsilon

    def test_formula(self):
        epsilon, delta, steps, slack = 0.1, 1e-7, 100, 1e-6
        spend = AdvancedCompositionAccountant(slack_delta=slack).compose(
            epsilon, delta, steps
        )
        expected = epsilon * math.sqrt(2 * steps * math.log(1 / slack)) + steps * epsilon * (
            math.exp(epsilon) - 1
        )
        assert spend.epsilon == pytest.approx(expected)
        assert spend.delta == pytest.approx(steps * delta + slack)

    def test_slack_validated(self):
        with pytest.raises(PrivacyError):
            AdvancedCompositionAccountant(slack_delta=0.0)

    def test_delta_accumulates(self):
        spend = AdvancedCompositionAccountant(slack_delta=1e-6).compose(0.1, 1e-8, 100)
        assert spend.delta > 1e-6


class TestRDPAccountant:
    def test_zero_steps_zero_epsilon(self):
        accountant = RDPAccountant()
        spend = accountant.get_privacy_spent(1e-6)
        assert spend.epsilon == 0.0

    def test_single_gaussian_close_to_analytic(self):
        """One Gaussian query with multiplier sigma has eps roughly
        sqrt(2 log(1.25/delta)) / sigma; RDP conversion should be the
        same order of magnitude."""
        multiplier = 4.0
        accountant = RDPAccountant()
        accountant.step_gaussian(multiplier, steps=1)
        spend = accountant.get_privacy_spent(1e-6)
        analytic = math.sqrt(2 * math.log(1.25 / 1e-6)) / multiplier
        assert 0.3 * analytic < spend.epsilon < 3.0 * analytic

    def test_beats_basic_composition_over_training(self):
        """The moments-accountant advantage the paper cites [2]."""
        mechanism = GaussianMechanism.for_clipped_gradients(0.2, 1e-6, 1e-2, 50)
        steps = 1000
        accountant = RDPAccountant()
        accountant.step_gaussian(mechanism.noise_multiplier, steps)
        rdp = accountant.get_privacy_spent(1e-6)
        basic = BasicCompositionAccountant().compose(0.2, 1e-6, steps)
        assert rdp.epsilon < basic.epsilon

    def test_epsilon_grows_sublinearly(self):
        """Composing k Gaussians costs O(sqrt(k)) epsilon, not O(k)."""
        def epsilon_after(steps):
            accountant = RDPAccountant()
            accountant.step_gaussian(2.0, steps)
            return accountant.get_privacy_spent(1e-6).epsilon

        e100, e400 = epsilon_after(100), epsilon_after(400)
        assert e400 < 4 * e100  # sublinear
        assert e400 > e100  # but growing

    def test_accumulates_across_calls(self):
        split = RDPAccountant()
        split.step_gaussian(2.0, 50)
        split.step_gaussian(2.0, 50)
        joint = RDPAccountant()
        joint.step_gaussian(2.0, 100)
        assert split.get_privacy_spent(1e-6).epsilon == pytest.approx(
            joint.get_privacy_spent(1e-6).epsilon
        )

    def test_reset(self):
        accountant = RDPAccountant()
        accountant.step_gaussian(2.0, 100)
        accountant.reset()
        assert accountant.get_privacy_spent(1e-6).epsilon == 0.0

    def test_invalid_multiplier(self):
        with pytest.raises(PrivacyError):
            RDPAccountant().step_gaussian(0.0)

    def test_invalid_delta(self):
        with pytest.raises(PrivacyError):
            RDPAccountant().get_privacy_spent(0.0)

    def test_invalid_orders(self):
        with pytest.raises(PrivacyError):
            RDPAccountant(orders=(0.5,))


class TestAmplification:
    def test_amplified_epsilon_smaller(self):
        amplified = amplify_by_subsampling(0.5, 1e-6, batch_size=50, dataset_size=8400)
        assert amplified.epsilon < 0.5

    def test_full_batch_no_amplification(self):
        amplified = amplify_by_subsampling(0.5, 1e-6, batch_size=100, dataset_size=100)
        assert amplified.epsilon == pytest.approx(0.5)
        assert amplified.delta == pytest.approx(1e-6)

    def test_formula(self):
        rate = 50 / 8400
        amplified = amplify_by_subsampling(0.5, 1e-6, 50, 8400)
        assert amplified.epsilon == pytest.approx(
            math.log(1 + rate * (math.exp(0.5) - 1))
        )
        assert amplified.delta == pytest.approx(rate * 1e-6)

    def test_small_rate_linearises(self):
        """For q << 1, amplified epsilon ~ q (e^eps - 1)."""
        amplified = amplify_by_subsampling(0.1, 0.0, 1, 100_000)
        expected = (math.exp(0.1) - 1.0) / 100_000
        assert amplified.epsilon == pytest.approx(expected, rel=0.01)

    def test_batch_larger_than_dataset_rejected(self):
        with pytest.raises(PrivacyError):
            amplify_by_subsampling(0.5, 1e-6, 101, 100)
