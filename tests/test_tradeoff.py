"""Tests for the privacy/robustness trade-off solvers."""

import math

import pytest

from repro.core.feasibility import master_condition_can_hold, min_batch_size_for_gar
from repro.core.tradeoff import (
    max_tolerable_byzantine,
    min_epsilon_for_gar,
    tradeoff_summary,
)
from repro.exceptions import ResilienceError
from repro.gars import GAR_REGISTRY, get_gar


class TestMinEpsilon:
    def test_threshold_is_tight(self):
        gar = get_gar("mda", 11, 5)
        epsilon = min_epsilon_for_gar(gar, dimension=69, batch_size=2000, delta=1e-6)
        assert epsilon < 1.0
        assert master_condition_can_hold(gar.k_f(), 69, 2000, epsilon * 1.001, 1e-6)
        assert not master_condition_can_hold(gar.k_f(), 69, 2000, epsilon * 0.999, 1e-6)

    def test_infeasible_returns_inf(self):
        """Small batch + moderate d: no epsilon < 1 works — the 'do not
        add up' regime."""
        gar = get_gar("mda", 11, 5)
        assert min_epsilon_for_gar(gar, dimension=69, batch_size=10, delta=1e-6) == math.inf

    def test_oracle_needs_no_privacy_sacrifice(self):
        gar = get_gar("oracle", 11, 5)
        assert min_epsilon_for_gar(gar, 10**6, 1, 1e-6) == 0.0

    def test_grows_with_dimension(self):
        gar = get_gar("mda", 11, 5)
        small = min_epsilon_for_gar(gar, dimension=10, batch_size=5000, delta=1e-6)
        large = min_epsilon_for_gar(gar, dimension=1000, batch_size=5000, delta=1e-6)
        assert large > small


class TestMaxTolerableByzantine:
    def test_large_batch_tolerates_more(self):
        from repro.gars.mda import MDAGAR

        few = max_tolerable_byzantine(MDAGAR, 11, 69, 2_000, 0.2, 1e-6)
        many = max_tolerable_byzantine(MDAGAR, 11, 69, 50_000, 0.2, 1e-6)
        assert many >= few

    def test_zero_when_only_f0_works(self):
        from repro.gars.mda import MDAGAR

        # Tiny batch: only f = 0 (infinite k_F) passes.
        assert max_tolerable_byzantine(MDAGAR, 11, 69, 1, 0.2, 1e-6) == 0

    def test_never_exceeds_precondition(self):
        from repro.gars.mda import MDAGAR

        result = max_tolerable_byzantine(MDAGAR, 11, 1, 10**6, 0.9, 1e-3)
        assert result <= 5  # majority precondition for n = 11

    def test_result_is_feasible_and_maximal(self):
        from repro.gars.mda import MDAGAR

        n, d, b = 11, 69, 20_000
        f = max_tolerable_byzantine(MDAGAR, n, d, b, 0.2, 1e-6)
        assert master_condition_can_hold(MDAGAR(n, f).k_f(), d, b, 0.2, 1e-6)
        if MDAGAR.supports(n, f + 1):
            assert not master_condition_can_hold(
                MDAGAR(n, f + 1).k_f(), d, b, 0.2, 1e-6
            )


class TestTradeoffSummary:
    def test_contents(self):
        gar = get_gar("mda", 11, 5)
        summary = tradeoff_summary(gar, 69, 50, 0.2, 1e-6)
        assert summary["gar"] == "mda"
        assert summary["feasible"] is False
        assert summary["min_batch_size"] > 50
        assert summary["min_epsilon"] == math.inf
        assert summary["k_f"] == pytest.approx(gar.k_f())

    def test_feasible_configuration(self):
        gar = get_gar("mda", 11, 1)  # k_F = 10/sqrt(8) ~ 3.54
        batch = math.ceil(min_batch_size_for_gar(gar, 69, 0.9, 1e-3))
        summary = tradeoff_summary(gar, 69, batch, 0.9, 1e-3)
        assert summary["feasible"] is True

    def test_every_gar_summarisable(self):
        for name, cls in GAR_REGISTRY.items():
            if name == "average":
                gar = cls(11, 0)
            elif name == "krum":
                gar = cls(11, 4)
            elif name == "bulyan":
                gar = cls(11, 2)
            else:
                gar = cls(11, 5)
            summary = tradeoff_summary(gar, 69, 50, 0.2, 1e-6)
            assert summary["gar"] == name
