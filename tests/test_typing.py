"""Tests for repro.typing coercion helpers."""

import numpy as np
import pytest

from repro.typing import as_gradient_matrix, as_vector, check_finite


class TestAsVector:
    def test_list_coerced(self):
        out = as_vector([1, 2, 3])
        assert out.dtype == np.float64
        assert out.shape == (3,)

    def test_2d_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            as_vector(np.zeros((2, 2)))

    def test_name_in_error(self):
        with pytest.raises(ValueError, match="gradient"):
            as_vector(np.zeros((2, 2)), name="gradient")


class TestAsGradientMatrix:
    def test_stacks_list_of_vectors(self):
        out = as_gradient_matrix([np.ones(3), np.zeros(3)])
        assert out.shape == (2, 3)

    def test_accepts_matrix(self):
        matrix = np.arange(6, dtype=float).reshape(2, 3)
        out = as_gradient_matrix(matrix)
        assert np.array_equal(out, matrix)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            as_gradient_matrix([])

    def test_mismatched_dims_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            as_gradient_matrix([np.ones(3), np.ones(4)])

    def test_nested_2d_rows_rejected(self):
        with pytest.raises(ValueError):
            as_gradient_matrix([np.ones((2, 2)), np.ones((2, 2))])

    def test_converts_to_float64(self):
        out = as_gradient_matrix([np.array([1, 2], dtype=np.int32)])
        assert out.dtype == np.float64


class TestCheckFinite:
    def test_passes_finite(self):
        array = np.ones(4)
        assert check_finite(array) is array

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="non-finite"):
            check_finite(np.array([1.0, np.nan]))

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="non-finite"):
            check_finite(np.array([np.inf]))
