"""Tests for the message types."""

import numpy as np
import pytest

from repro.distributed.messages import GradientMessage, WorkerSubmission


class TestGradientMessage:
    def test_construction(self):
        message = GradientMessage(worker_id=3, step=7, gradient=np.ones(4))
        assert message.worker_id == 3
        assert message.step == 7
        assert not message.byzantine

    def test_gradient_coerced_to_float64(self):
        message = GradientMessage(0, 1, np.array([1, 2], dtype=np.int32))
        assert message.gradient.dtype == np.float64

    def test_2d_gradient_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            GradientMessage(0, 1, np.zeros((2, 2)))

    def test_frozen(self):
        message = GradientMessage(0, 1, np.ones(2))
        with pytest.raises(AttributeError):
            message.worker_id = 5

    def test_byzantine_flag(self):
        message = GradientMessage(0, 1, np.ones(2), byzantine=True)
        assert message.byzantine

    def test_repr_hides_gradient(self):
        message = GradientMessage(0, 1, np.ones(1000))
        assert len(repr(message)) < 200


class TestWorkerSubmission:
    def test_holds_both_views(self):
        submission = WorkerSubmission(submitted=np.ones(3), clean=np.zeros(3))
        assert np.array_equal(submission.submitted, np.ones(3))
        assert np.array_equal(submission.clean, np.zeros(3))

    def test_frozen(self):
        submission = WorkerSubmission(submitted=np.ones(3), clean=np.zeros(3))
        with pytest.raises(AttributeError):
            submission.submitted = np.zeros(3)
