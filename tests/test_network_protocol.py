"""Registry-driven conformance test for the shared ``Network`` protocol.

Every component registered under the ``network`` family must subclass
:class:`repro.distributed.network.Network` and honour its contract:
``deliver`` agrees with per-message ``drops_message`` verdicts,
verdicts are query-order independent, and ``drop_probability`` reports
the marginal rate.  Walking the registry (instead of naming classes)
means a future transport added to the family is conformance-tested the
day it is registered.
"""

import inspect

import numpy as np
import pytest

from repro.distributed.network import LossyNetwork, Network, PerfectNetwork
from repro.pipeline.registry import REGISTRY
from repro.rng import generator_from_seed


def _build(name: str) -> Network:
    """One seeded instance of a registered network component."""
    kwargs = {}
    factory = REGISTRY.get("network", name)
    parameters = inspect.signature(factory).parameters
    if "rng" in parameters:
        kwargs["rng"] = generator_from_seed(123)
    if "drop_probability" in parameters:
        kwargs["drop_probability"] = 0.4
    return factory(**kwargs)


@pytest.mark.parametrize("name", sorted(REGISTRY.available("network")))
class TestNetworkConformance:
    def test_is_a_network_subclass(self, name):
        network = _build(name)
        assert isinstance(network, Network)

    def test_implements_the_protocol(self, name):
        network = _build(name)
        assert callable(network.deliver)
        assert callable(network.drops_message)
        assert 0.0 <= network.drop_probability <= 1.0

    def test_deliver_agrees_with_per_message_verdicts(self, name):
        """A delivered round is exactly the per-message verdicts applied."""
        network = _build(name)
        gradients = np.arange(40.0).reshape(8, 5) + 1.0
        for step in range(5):
            delivered = network.deliver(gradients.copy(), step)
            for worker in range(8):
                if network.drops_message(step, worker):
                    assert delivered[worker].tolist() == [0.0] * 5
                else:
                    assert delivered[worker].tolist() == gradients[worker].tolist()

    def test_verdicts_are_query_order_independent(self, name):
        """(step, worker) verdicts never depend on what was asked before."""
        first = _build(name)
        forward = [
            first.drops_message(step, worker)
            for step in range(4)
            for worker in range(6)
        ]
        second = _build(name)
        backward = [
            second.drops_message(step, worker)
            for step in reversed(range(4))
            for worker in reversed(range(6))
        ]
        assert forward == list(reversed(backward))


def test_registry_family_is_exactly_the_known_transports():
    assert set(REGISTRY.available("network")) == {"perfect", "lossy"}


def test_network_cannot_be_instantiated_directly():
    with pytest.raises(TypeError):
        Network()


def test_concrete_networks_subclass_the_protocol():
    assert issubclass(PerfectNetwork, Network)
    assert issubclass(LossyNetwork, Network)
