"""Unit tests for the vectorized aggregation engine (repro.gars.kernels)."""

import numpy as np
import pytest

from repro.exceptions import AggregationError
from repro.gars import batched_aggregate, get_gar
from repro.gars.kernels import (
    geometric_median_batch,
    krum_scores_from_sq_distances,
    mda_aggregate,
    pairwise_sq_distances,
)
from repro.gars.krum import krum_scores
from repro.gars.reference import geometric_median_reference, mda_aggregate_reference
from tests.helpers import random_gradient_matrix


class TestPairwiseSqDistances:
    def test_matches_direct_computation(self):
        gradients = random_gradient_matrix(7, 5, seed=0)
        distances = pairwise_sq_distances(gradients)
        for i in range(7):
            for j in range(7):
                exact = float(np.sum((gradients[i] - gradients[j]) ** 2))
                assert distances[i, j] == pytest.approx(exact, rel=1e-12, abs=1e-300)

    def test_symmetric_zero_diagonal(self):
        distances = pairwise_sq_distances(random_gradient_matrix(6, 4, seed=1))
        assert np.array_equal(distances, distances.T)
        assert np.all(np.diag(distances) == 0.0)

    def test_exact_for_duplicate_rows(self):
        """Duplicate rows must yield exactly zero, not cancellation noise."""
        row = random_gradient_matrix(1, 9, seed=2, center=1000.0)[0]
        gradients = np.stack([row, row, row + 1.0])
        distances = pairwise_sq_distances(gradients)
        assert distances[0, 1] == 0.0
        assert distances[1, 0] == 0.0
        assert distances[0, 2] > 0.0

    def test_exact_for_near_duplicate_rows(self):
        """The Gram expansion loses all digits on near-duplicates at a
        large offset; the hybrid kernel recomputes them exactly."""
        base = np.full(4, 1e6)
        delta = 1e-7
        gradients = np.stack([base, base + delta, base + 1.0])
        distances = pairwise_sq_distances(gradients)
        exact = 4 * delta**2
        assert distances[0, 1] == pytest.approx(exact, rel=1e-9)
        # The pure Gram expansion is catastrophically wrong here —
        # prove the fallback actually changed the answer.
        sq_norms = np.sum(gradients**2, axis=1)
        gram = sq_norms[:, None] + sq_norms[None, :] - 2.0 * (gradients @ gradients.T)
        assert not np.isclose(np.maximum(gram, 0.0)[0, 1], exact, rtol=0.5, atol=0.0)

    def test_batched_matches_single(self):
        rng = np.random.default_rng(3)
        stack = rng.standard_normal((4, 6, 5))
        batched = pairwise_sq_distances(stack)
        for index in range(4):
            assert np.array_equal(batched[index], pairwise_sq_distances(stack[index]))

    def test_rejects_bad_rank(self):
        with pytest.raises(AggregationError):
            pairwise_sq_distances(np.zeros(3))


class TestKrumNearDuplicateRegression:
    """The latent krum_scores inaccuracy: near-duplicate rows used to
    score Gram cancellation noise instead of their true distances."""

    def test_duplicate_heavy_cluster_scores_exactly(self):
        base = np.full(6, 1e6)
        gradients = np.stack([base, base, base, base + 1e-7, base + 50.0])
        scores = krum_scores(gradients, f=1)
        # Each of rows 0-2 has neighbours {the two other duplicates}
        # at distance 0: their scores must be *exactly* the tiny
        # distance sums, with no noise floor.
        neighbours = 5 - 1 - 2  # n - f - 2 = 2
        for i in range(3):
            exact = sorted(
                float(np.sum((gradients[i] - gradients[j]) ** 2))
                for j in range(5)
                if j != i
            )
            assert scores[i] == pytest.approx(sum(exact[:neighbours]), rel=1e-9)
        assert scores[0] == 0.0  # two exact-duplicate neighbours

    def test_krum_picks_inside_duplicate_cluster(self):
        """With an offset cluster of near-duplicates, Krum must select a
        cluster member; Gram noise used to make the scores garbage."""
        base = np.full(8, 5e5)
        rng = np.random.default_rng(4)
        cluster = base + 1e-8 * rng.standard_normal((6, 8))
        outliers = base + 100.0 + rng.standard_normal((2, 8))
        gradients = np.vstack([cluster, outliers])
        output = get_gar("krum", 8, 2).aggregate(gradients)
        assert any(np.array_equal(output, row) for row in cluster)


class TestKrumScoresKernel:
    def test_accepts_precomputed_distances(self):
        gradients = random_gradient_matrix(9, 5, seed=5)
        distances = pairwise_sq_distances(gradients)
        direct = krum_scores(gradients, 2)
        via_matrix = krum_scores_from_sq_distances(distances, 2)
        assert np.array_equal(direct, via_matrix)

    def test_too_few_neighbours_rejected(self):
        distances = pairwise_sq_distances(random_gradient_matrix(5, 3, seed=6))
        with pytest.raises(AggregationError):
            krum_scores_from_sq_distances(distances, 3)

    def test_does_not_mutate_input(self):
        distances = pairwise_sq_distances(random_gradient_matrix(7, 3, seed=7))
        copy = distances.copy()
        krum_scores_from_sq_distances(distances, 1)
        assert np.array_equal(distances, copy)


class TestGeometricMedianBatch:
    def test_matches_reference_per_slice(self):
        rng = np.random.default_rng(8)
        stack = rng.standard_normal((5, 9, 6))
        batched = geometric_median_batch(stack)
        for index in range(5):
            reference = geometric_median_reference(stack[index])
            assert np.allclose(batched[index], reference, atol=1e-7)

    def test_mixed_convergence_speeds(self):
        """Slices that converge at different iterations must all land on
        their own median (the active-set masking must not cross wires)."""
        rng = np.random.default_rng(9)
        easy = np.tile(rng.standard_normal(4), (7, 1))  # converges instantly
        hard = rng.standard_normal((7, 4)) * 100.0
        stack = np.stack([easy, hard, easy + 3.0])
        batched = geometric_median_batch(stack)
        assert np.allclose(batched[0], easy[0], atol=1e-9)
        assert np.allclose(batched[2], easy[0] + 3.0, atol=1e-9)
        assert np.allclose(
            batched[1], geometric_median_reference(hard), atol=1e-6
        )

    def test_validation(self):
        with pytest.raises(AggregationError):
            geometric_median_batch(np.zeros((2, 3)))
        with pytest.raises(AggregationError):
            geometric_median_batch(np.zeros((1, 2, 2)), max_iterations=0)


class TestMDAKernel:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_reference(self, seed):
        gradients = random_gradient_matrix(9, 4, seed=seed)
        assert np.allclose(
            mda_aggregate(gradients, 3),
            mda_aggregate_reference(gradients, 3),
            atol=1e-12,
        )

    def test_tie_broken_by_smallest_mean(self):
        """Two disjoint subsets with identical diameters: the winner is
        the lexicographically smaller mean, independent of order."""
        gradients = np.array([[0.0, 0.0], [1.0, 0.0], [10.0, 0.0], [11.0, 0.0]])
        result = mda_aggregate(gradients, 2)
        assert np.array_equal(result, np.array([0.5, 0.0]))
        flipped = mda_aggregate(gradients[::-1].copy(), 2)
        assert np.array_equal(flipped, result)

    def test_f_zero_is_mean(self):
        gradients = random_gradient_matrix(5, 3, seed=10)
        assert np.array_equal(mda_aggregate(gradients, 0), gradients.mean(axis=0))


class TestBatchedAggregateEntryPoint:
    def test_routes_through_gar(self):
        rng = np.random.default_rng(11)
        stack = rng.standard_normal((3, 11, 5))
        gar = get_gar("median", 11, 5)
        assert np.array_equal(
            batched_aggregate(gar, stack), gar.aggregate_batch(stack)
        )

    def test_accepts_sequence_of_matrices(self):
        rng = np.random.default_rng(12)
        matrices = [rng.standard_normal((7, 4)) for _ in range(3)]
        gar = get_gar("median", 7, 3)
        batched = gar.aggregate_batch(matrices)
        assert batched.shape == (3, 4)
        assert np.array_equal(batched[1], gar.aggregate(matrices[1]))

    def test_wrong_worker_count_rejected(self):
        gar = get_gar("median", 7, 3)
        with pytest.raises(AggregationError, match="n=7"):
            gar.aggregate_batch(np.zeros((2, 6, 4)))

    def test_non_finite_rejected(self):
        gar = get_gar("median", 5, 2)
        stack = np.zeros((2, 5, 3))
        stack[1, 2, 0] = np.nan
        with pytest.raises(AggregationError, match="non-finite"):
            gar.aggregate_batch(stack)

    def test_empty_batch_rejected(self):
        gar = get_gar("median", 5, 2)
        with pytest.raises(ValueError):
            gar.aggregate_batch([])


class TestServerStepBatch:
    def test_replay_matches_sequential_steps(self):
        from repro.distributed.server import ParameterServer
        from repro.optim.sgd import SGDOptimizer

        rng = np.random.default_rng(13)
        rounds = rng.standard_normal((6, 9, 4))

        def build():
            return ParameterServer(
                initial_parameters=np.zeros(4),
                gar=get_gar("median", 9, 4),
                optimizer=SGDOptimizer(0.5, momentum=0.9),
            )

        sequential = build()
        expected = np.stack([sequential.step(matrix) for matrix in rounds])
        batched = build()
        aggregates = batched.step_batch(rounds)
        assert np.array_equal(aggregates, expected)
        assert np.array_equal(batched.parameters, sequential.parameters)
        assert batched.step_count == sequential.step_count == 6
