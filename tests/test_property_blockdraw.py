"""Hypothesis properties for the fused engine's blockwise RNG pre-draw.

The fused round engine is only sound because a block draw consumes a
``numpy.random.Generator`` stream exactly as the sequential per-round
draws would.  These properties pin that equivalence for both DP
mechanisms and both sampler modes — including the *generator end
state* (the draw after the block must match the draw after the
sequential calls), which is what guarantees later rounds stay aligned.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.batching import BatchSampler
from repro.data.datasets import Dataset
from repro.distributed.engine import default_block_rounds
from repro.privacy.mechanisms import GaussianMechanism, LaplaceMechanism
from repro.rng import SeedTree


def _gaussian(sensitivity=0.004):
    return GaussianMechanism(epsilon=0.5, delta=1e-6, l2_sensitivity=sensitivity)


def _laplace(sensitivity=0.02):
    return LaplaceMechanism(epsilon=0.7, l1_sensitivity=sensitivity)


def _generators(seed):
    tree = SeedTree(seed)
    return tree.generator("a"), tree.generator("a")


class TestNoiseBlockEquivalence:
    @given(
        kind=st.sampled_from(["gaussian", "laplace"]),
        rounds=st.integers(1, 20),
        dimension=st.integers(1, 60),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_block_matches_sequential_draws(self, kind, rounds, dimension, seed):
        mechanism = _gaussian() if kind == "gaussian" else _laplace()
        block_rng, seq_rng = _generators(seed)
        block = mechanism.sample_noise_block(rounds, dimension, block_rng)
        sequential = np.stack(
            [mechanism.sample_noise(dimension, seq_rng) for _ in range(rounds)]
        )
        assert block.shape == (rounds, dimension)
        assert block.tolist() == sequential.tolist()  # bit-identical
        # End states agree: the next draw is identical on both streams.
        assert block_rng.standard_normal() == seq_rng.standard_normal()

    def test_base_class_fallback_is_sequential(self):
        class Custom(GaussianMechanism):
            # Overriding sample_noise drops to the base block loop.
            def sample_noise(self, dimension, rng):
                return rng.random(dimension)

        mechanism = Custom(epsilon=0.5, delta=1e-6, l2_sensitivity=1.0)
        block_rng, seq_rng = _generators(5)
        from repro.privacy.mechanisms import NoiseMechanism

        block = NoiseMechanism.sample_noise_block(mechanism, 4, 7, block_rng)
        sequential = np.stack([mechanism.sample_noise(7, seq_rng) for _ in range(4)])
        assert block.tolist() == sequential.tolist()

    def test_rejects_invalid_rounds(self):
        from repro.exceptions import PrivacyError

        rng = np.random.default_rng(0)
        for mechanism in (_gaussian(), _laplace()):
            with pytest.raises(PrivacyError, match="rounds"):
                mechanism.sample_noise_block(0, 3, rng)


def _dataset(num_points):
    rng = np.random.default_rng(123)
    return Dataset(
        features=rng.standard_normal((num_points, 3)),
        labels=rng.integers(0, 2, num_points).astype(np.float64),
        name="block-draw",
    )


class TestIndexBlockEquivalence:
    @given(
        replace=st.booleans(),
        rounds=st.integers(1, 20),
        num_points=st.integers(2, 120),
        seed=st.integers(0, 2**32 - 1),
        batch_data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_block_matches_sequential_draws(
        self, replace, rounds, num_points, seed, batch_data
    ):
        batch_size = batch_data.draw(st.integers(1, num_points), label="batch_size")
        dataset = _dataset(num_points)
        block_rng, seq_rng = _generators(seed)
        block_sampler = BatchSampler(
            dataset, batch_size, block_rng, replace_within_batch=replace
        )
        seq_sampler = BatchSampler(
            dataset, batch_size, seq_rng, replace_within_batch=replace
        )
        block = block_sampler.sample_index_block(rounds)
        sequential = np.stack(
            [seq_sampler.sample_indices() for _ in range(rounds)]
        )
        assert block.shape == (rounds, batch_size)
        assert block.tolist() == sequential.tolist()
        assert block_rng.standard_normal() == seq_rng.standard_normal()

    def test_rejects_invalid_rounds(self):
        from repro.exceptions import DataError

        sampler = BatchSampler(_dataset(10), 3, np.random.default_rng(0))
        with pytest.raises(DataError, match="rounds"):
            sampler.sample_index_block(0)


class TestBlockwiseLossMeans:
    @given(
        rounds=st.integers(1, 40),
        workers=st.integers(1, 30),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_axis_mean_matches_per_round_mean(self, rounds, workers, seed):
        """The engine's deferred block reduction == per-round np.mean."""
        block = np.random.default_rng(seed).standard_normal((rounds, workers))
        per_round = [float(np.mean(block[r])) for r in range(rounds)]
        blockwise = [float(v) for v in block.mean(axis=1)]
        assert per_round == blockwise


class TestInPlaceOptimizerEquivalence:
    @given(
        momentum=st.sampled_from([0.0, 0.5, 0.99]),
        nesterov=st.booleans(),
        steps=st.integers(1, 10),
        dimension=st.integers(1, 40),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_out_path_bit_identical(self, momentum, nesterov, steps, dimension, seed):
        from repro.optim.sgd import SGDOptimizer

        if nesterov and momentum == 0.0:
            momentum = 0.5
        rng = np.random.default_rng(seed)
        gradients = rng.standard_normal((steps, dimension))
        start = rng.standard_normal(dimension)

        allocating = SGDOptimizer(0.3, momentum=momentum, nesterov=nesterov)
        params_a = start.copy()
        for gradient in gradients:
            params_a = allocating.step(params_a, gradient)

        in_place = SGDOptimizer(0.3, momentum=momentum, nesterov=nesterov)
        params_b = start.copy()
        for gradient in gradients:
            returned = in_place.step(params_b, gradient, out=params_b)
            assert returned is params_b
        assert params_a.tolist() == params_b.tolist()


class TestSelectBestEquivalence:
    @given(
        n=st.integers(2, 20),
        dimension=st.integers(1, 8),
        duplicates=st.integers(0, 10),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_full_ranking_head(self, n, dimension, duplicates, seed):
        from repro.gars.kernels import (
            rank_by_score_then_value,
            select_best_by_score_then_value,
        )

        rng = np.random.default_rng(seed)
        gradients = rng.standard_normal((n, dimension))
        # Quantized scores force exact ties; duplicated rows force the
        # identical-run shortcut.
        scores = np.round(rng.standard_normal(n), 1)
        for _ in range(min(duplicates, n - 1)):
            i, j = rng.integers(0, n, 2)
            gradients[i] = gradients[j]
            scores[i] = scores[j]
        order = rank_by_score_then_value(scores, gradients)
        assert select_best_by_score_then_value(scores, gradients) == int(order[0])


def test_default_block_rounds_bounds():
    assert default_block_rounds(25, 100, 50, 25) >= 1
    assert default_block_rounds(10, 10_000_000, 50, 10) == 1
    assert default_block_rounds(1, 1, 1, 0) == 256
