"""CLI surface of the telemetry plane.

``--telemetry`` on ``run``/``simulate``/``campaign``, the per-run path
derivation of :func:`telemetry_path_for`, the ``trace summarize``
subcommand, and the ``degraded:`` summary lines that surface shard
departures in the run report.
"""

import json

import pytest

from repro.experiments.cli import build_parser, main, render_run_summary
from repro.experiments.runner import telemetry_path_for
from repro.telemetry import read_trace, validate_events

from tests.test_cli_run import tiny_cell


class TestTelemetryPathFor:
    def test_base_unchanged_for_single_run(self):
        assert telemetry_path_for("out/trace.jsonl") == "out/trace.jsonl"

    def test_name_and_seed_suffixes(self):
        assert (
            telemetry_path_for("out/trace.jsonl", name="krum-dp")
            == "out/trace-krum-dp.jsonl"
        )
        assert telemetry_path_for("out/trace.jsonl", seed=7) == "out/trace-s7.jsonl"
        assert (
            telemetry_path_for("out/trace.jsonl", name="a", seed=2)
            == "out/trace-a-s2.jsonl"
        )

    def test_extension_defaults_to_jsonl(self):
        assert telemetry_path_for("out/trace", seed=1) == "out/trace-s1.jsonl"


class TestParser:
    def test_run_and_simulate_accept_telemetry(self):
        parser = build_parser()
        arguments = parser.parse_args(["run", "grid.json", "--telemetry", "t.jsonl"])
        assert str(arguments.telemetry) == "t.jsonl"
        arguments = parser.parse_args(
            ["simulate", "grid.json", "--telemetry", "t.jsonl"]
        )
        assert str(arguments.telemetry) == "t.jsonl"

    def test_trace_subcommand_options(self):
        arguments = build_parser().parse_args(["trace", "summarize", "t.jsonl"])
        assert arguments.command == "trace"
        assert arguments.action == "summarize"
        assert str(arguments.trace) == "t.jsonl"

    def test_trace_rejects_unknown_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "replay", "t.jsonl"])


class TestRunWithTelemetry:
    def test_run_writes_valid_trace(self, tmp_path, capsys):
        config = tmp_path / "config.json"
        config.write_text(json.dumps(tiny_cell()))
        trace = tmp_path / "trace.jsonl"
        assert main(["run", str(config), "--telemetry", str(trace)]) == 0
        events = validate_events(read_trace(trace))
        assert events[0]["meta"]["mode"] == "train"

    def test_flag_beats_file_key(self, tmp_path, capsys):
        config = tmp_path / "grid.json"
        config.write_text(
            json.dumps(
                {
                    "configs": [tiny_cell()],
                    "telemetry": str(tmp_path / "from-file.jsonl"),
                }
            )
        )
        flagged = tmp_path / "from-flag.jsonl"
        assert main(["run", str(config), "--telemetry", str(flagged)]) == 0
        assert flagged.exists()
        assert not (tmp_path / "from-file.jsonl").exists()

    def test_file_key_used_without_flag(self, tmp_path, capsys):
        trace = tmp_path / "from-file.jsonl"
        config = tmp_path / "grid.json"
        config.write_text(
            json.dumps({"configs": [tiny_cell()], "telemetry": str(trace)})
        )
        assert main(["run", str(config)]) == 0
        validate_events(read_trace(trace))

    def test_multi_cell_multi_seed_get_distinct_traces(self, tmp_path, capsys):
        config = tmp_path / "grid.json"
        config.write_text(
            json.dumps(
                {"configs": [tiny_cell("a", seeds=[1, 2]), tiny_cell("b")]}
            )
        )
        base = tmp_path / "trace.jsonl"
        assert main(["run", str(config), "--telemetry", str(base)]) == 0
        for expected in ("trace-a-s1.jsonl", "trace-a-s2.jsonl", "trace-b.jsonl"):
            validate_events(read_trace(tmp_path / expected))
        assert not base.exists()

    def test_simulate_writes_valid_trace(self, tmp_path, capsys):
        config = tmp_path / "config.json"
        config.write_text(json.dumps(tiny_cell()))
        trace = tmp_path / "trace.jsonl"
        assert main(["simulate", str(config), "--telemetry", str(trace)]) == 0
        events = validate_events(read_trace(trace))
        assert events[0]["meta"]["mode"] == "simulate"


class TestTraceSummarize:
    def write_trace(self, tmp_path):
        config = tmp_path / "config.json"
        config.write_text(json.dumps(tiny_cell()))
        trace = tmp_path / "trace.jsonl"
        assert main(["run", str(config), "--telemetry", str(trace)]) == 0
        return trace

    def test_summarize_renders_phase_table(self, tmp_path, capsys):
        trace = self.write_trace(tmp_path)
        capsys.readouterr()
        assert main(["trace", "summarize", str(trace)]) == 0
        output = capsys.readouterr().out
        assert "phase" in output and "share" in output
        assert "round." in output
        assert "counters:" in output
        assert "rounds = 4" in output

    def test_summarize_to_output_file(self, tmp_path, capsys):
        trace = self.write_trace(tmp_path)
        report = tmp_path / "summary.txt"
        assert main(["trace", "summarize", str(trace), "--output", str(report)]) == 0
        assert "phase" in report.read_text()

    def test_missing_trace_exits_2(self, tmp_path, capsys):
        assert main(["trace", "summarize", str(tmp_path / "nope.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_corrupt_trace_exits_2(self, tmp_path, capsys):
        trace = self.write_trace(tmp_path)
        with open(trace, "a") as handle:
            handle.write("{not json\n")
        capsys.readouterr()
        assert main(["trace", "summarize", str(trace)]) == 2
        assert "unparseable" in capsys.readouterr().err

    def test_out_of_order_trace_exits_2(self, tmp_path, capsys):
        trace = self.write_trace(tmp_path)
        events = [json.loads(line) for line in trace.read_text().splitlines()]
        events.append(dict(events[-1]))  # replayed seq: ordering violation
        trace.write_text("\n".join(json.dumps(event) for event in events) + "\n")
        capsys.readouterr()
        assert main(["trace", "summarize", str(trace)]) == 2
        assert "does not increase" in capsys.readouterr().err


class TestDegradedSummaryLines:
    def outcome_with_departures(self):
        from repro.experiments.config import ExperimentConfig

        config = ExperimentConfig(
            name="mp-cell", num_steps=2, n=4, f=0, gar="average",
            batch_size=5, seeds=(1,),
        )
        from repro.data.phishing import make_phishing_dataset
        from repro.experiments.runner import run_config
        from repro.models.logistic import LogisticRegressionModel

        outcome = run_config(
            config,
            LogisticRegressionModel(10),
            make_phishing_dataset(seed=0, num_points=60, num_features=10),
            None,
        )
        outcome.departures.append((1, {0: "process died (code 23)"}))
        return outcome

    def test_departures_render_as_degraded_lines(self):
        outcome = self.outcome_with_departures()
        text = render_run_summary({"mp-cell": outcome})
        assert "degraded: mp-cell seed 1 — shard 0: process died (code 23)" in text

    def test_clean_outcomes_render_no_degraded_line(self):
        outcome = self.outcome_with_departures()
        outcome.departures.clear()
        assert "degraded" not in render_run_summary({"mp-cell": outcome})

    def test_departures_survive_save_roundtrip(self, tmp_path):
        from repro.experiments.io import (
            load_outcomes,
            save_outcomes,
        )

        outcome = self.outcome_with_departures()
        path = tmp_path / "outcomes.json"
        save_outcomes({"mp-cell": outcome}, path)
        restored = load_outcomes(path)
        assert restored["mp-cell"].departures == [
            (1, {0: "process died (code 23)"})
        ]


class TestCampaignTelemetry:
    MATRIX = {
        "name": "cli-telemetry",
        "base": {
            "num_steps": 2,
            "n": 3,
            "f": 1,
            "gar": "mda",
            "batch_size": 5,
            "eval_every": 1,
            "seeds": [1],
        },
        "axes": {"attack": [None, "little"]},
        "report": {"rows": "gar", "cols": "attack", "metrics": ["final_loss"]},
    }

    def test_campaign_stamps_trace_paths_into_records(self, tmp_path, capsys):
        manifest = tmp_path / "campaign.json"
        manifest.write_text(json.dumps(self.MATRIX))
        store = tmp_path / "store"
        traces = tmp_path / "traces"
        code = main(
            [
                "campaign", str(manifest),
                "--store", str(store),
                "--telemetry", str(traces),
            ]
        )
        assert code == 0
        records = [
            json.loads(path.read_text())
            for path in sorted(store.glob("records/**/*.json"))
        ]
        assert len(records) == 2
        for record in records:
            trace_path = record["telemetry"]
            assert trace_path is not None
            assert trace_path.endswith(f"{record['key']}.jsonl")
            validate_events(read_trace(trace_path))

    def test_campaign_without_telemetry_stamps_none(self, tmp_path, capsys):
        manifest = tmp_path / "campaign.json"
        manifest.write_text(json.dumps(self.MATRIX))
        store = tmp_path / "store"
        assert main(["campaign", str(manifest), "--store", str(store)]) == 0
        records = [
            json.loads(path.read_text())
            for path in sorted(store.glob("records/**/*.json"))
        ]
        assert records and all(record["telemetry"] is None for record in records)

    def test_telemetry_excluded_from_store_key(self):
        """The trace path is provenance, not identity: a cached record
        must be reused whether or not telemetry was requested."""
        from repro.campaign.matrix import ScenarioMatrix
        from repro.campaign.runner import plan_campaign
        from repro.campaign.store import ResultStore
        import tempfile

        matrix = ScenarioMatrix.from_dict(self.MATRIX)
        with tempfile.TemporaryDirectory() as scratch:
            bare = plan_campaign(matrix, ResultStore(f"{scratch}/a"))
            traced = plan_campaign(
                matrix, ResultStore(f"{scratch}/b"), telemetry=f"{scratch}/t"
            )
        assert [job.key for job in bare.pending] == [
            job.key for job in traced.pending
        ]
        assert all(job.telemetry is None for job in bare.pending)
        assert all(
            job.telemetry == f"{scratch}/t/{job.key}.jsonl"
            for job in traced.pending
        )
