"""StepResult instrumentation under the vectorized engine.

The cohort-batched ``Cluster.step`` must keep every per-round
instrumentation matrix (honest clean / honest submitted / Byzantine
vector / aggregate) with the shapes, dtypes, and semantics the analysis
layer consumes — including the ``f = 0`` (no attack) path and the
dropped-message (lossy network) path.
"""

import numpy as np
import pytest

from repro.attacks import get_attack
from repro.data.batching import BatchSampler
from repro.data.datasets import Dataset
from repro.distributed.cluster import Cluster
from repro.distributed.network import LossyNetwork
from repro.distributed.server import ParameterServer
from repro.distributed.worker import HonestWorker, compute_cohort
from repro.gars import get_gar
from repro.models.linear import LinearRegressionModel
from repro.optim.sgd import SGDOptimizer
from repro.rng import SeedTree

NUM_FEATURES = 3
DIMENSION = NUM_FEATURES + 1  # bias folded in


def build_cluster(
    n=7,
    f=2,
    num_byzantine=2,
    gar="median",
    attack="little",
    seed=0,
    g_max=1e-2,
    momentum=0.9,
    network=None,
):
    seeds = SeedTree(seed)
    rng = np.random.default_rng(1)
    dataset = Dataset(
        features=rng.standard_normal((60, NUM_FEATURES)),
        labels=rng.standard_normal(60),
    )
    model = LinearRegressionModel(NUM_FEATURES)
    workers = [
        HonestWorker(
            worker_id=i,
            model=model,
            sampler=BatchSampler(dataset, 8, seeds.generator("batch", i)),
            noise_rng=seeds.generator("noise", i),
            g_max=g_max,
            momentum=momentum,
        )
        for i in range(n - num_byzantine)
    ]
    server = ParameterServer(
        initial_parameters=np.zeros(model.dimension),
        gar=get_gar(gar, n, f),
        optimizer=SGDOptimizer(0.1),
    )
    resolved = get_attack(attack) if attack else None
    return Cluster(
        server=server,
        honest_workers=workers,
        num_byzantine=num_byzantine,
        attack=resolved,
        attack_rng=seeds.generator("attack") if resolved else None,
        network=network,
    )


class TestStepResultShapesAndDtypes:
    def test_under_attack(self):
        result = build_cluster(n=7, f=2, num_byzantine=2).step()
        assert result.step == 1
        assert result.honest_submitted.shape == (5, DIMENSION)
        assert result.honest_clean.shape == (5, DIMENSION)
        assert result.aggregated.shape == (DIMENSION,)
        assert result.byzantine_gradient is not None
        assert result.byzantine_gradient.shape == (DIMENSION,)
        for matrix in (
            result.honest_submitted,
            result.honest_clean,
            result.aggregated,
            result.byzantine_gradient,
        ):
            assert matrix.dtype == np.float64
        assert result.num_honest == 5

    def test_f_zero_no_attack_path(self):
        cluster = build_cluster(
            n=5, f=0, num_byzantine=0, gar="average", attack=None
        )
        result = cluster.step()
        assert result.byzantine_gradient is None
        assert result.honest_submitted.shape == (5, DIMENSION)
        assert result.honest_clean.shape == (5, DIMENSION)
        assert result.honest_submitted.dtype == np.float64
        assert result.num_honest == 5
        # With averaging and no attack, the aggregate is exactly the
        # mean of the honest submissions.
        assert np.allclose(
            result.aggregated, result.honest_submitted.mean(axis=0), atol=1e-15
        )

    def test_clean_differs_from_submitted_only_with_noise(self):
        """Without DP, submitted == clean (momentum applies to both)."""
        result = build_cluster().step()
        assert np.array_equal(result.honest_submitted, result.honest_clean)

    def test_step_counter_advances(self):
        cluster = build_cluster()
        for expected in (1, 2, 3):
            assert cluster.step().step == expected
        assert cluster.step_count == 3

    def test_matrices_are_per_step_snapshots(self):
        """Each round's matrices are independent arrays: mutating one
        round's instrumentation must not corrupt the next."""
        cluster = build_cluster()
        first = cluster.step()
        frozen = first.honest_submitted.copy()
        first.honest_submitted[:] = 1e9
        second = cluster.step()
        assert not np.array_equal(second.honest_submitted, first.honest_submitted)
        del frozen


class TestDroppedMessagePath:
    def test_lossy_network_zeroes_rows_before_aggregation(self):
        """Reconstruct the drop mask from an identically-seeded shadow
        network (drops are per-message deterministic) and check the
        aggregate saw zero rows for dropped messages."""
        drop_probability = 0.6
        network = LossyNetwork(drop_probability, np.random.default_rng(42))
        cluster = build_cluster(
            n=5,
            f=0,
            num_byzantine=0,
            gar="average",
            attack=None,
            momentum=0.0,
            network=network,
        )
        shadow = LossyNetwork(drop_probability, np.random.default_rng(42))
        result = cluster.step()
        dropped = np.array([shadow.drops_message(1, worker) for worker in range(5)])
        assert dropped.any()  # seed chosen so the path is actually hit
        delivered = result.honest_submitted.copy()
        delivered[dropped] = 0.0
        assert np.allclose(result.aggregated, delivered.mean(axis=0), atol=1e-15)
        assert network.dropped_total == int(dropped.sum())

    def test_instrumentation_reports_submitted_not_delivered(self):
        """honest_submitted records what workers *sent*; drops happen in
        the network, after instrumentation."""
        network = LossyNetwork(0.99, np.random.default_rng(0))
        cluster = build_cluster(
            n=4, f=0, num_byzantine=0, gar="average", attack=None,
            momentum=0.0, network=network,
        )
        result = cluster.step()
        # Despite ~every message dropping, the submitted matrix has no
        # zero rows (the linear model on random data never emits one).
        assert not np.any(np.all(result.honest_submitted == 0.0, axis=1))


class TestCohortMatchesPerWorkerPath:
    """The vectorized cohort path and per-worker compute() must agree on
    matching RNG streams (same seeds, fresh workers)."""

    @pytest.mark.parametrize("momentum", [0.0, 0.9])
    @pytest.mark.parametrize("with_noise", [False, True])
    def test_agreement(self, momentum, with_noise):
        from repro.privacy.mechanisms import GaussianMechanism

        def build_workers():
            seeds = SeedTree(3)
            rng = np.random.default_rng(1)
            dataset = Dataset(
                features=rng.standard_normal((40, NUM_FEATURES)),
                labels=rng.standard_normal(40),
            )
            model = LinearRegressionModel(NUM_FEATURES)
            mechanism = (
                GaussianMechanism(
                    epsilon=0.5, delta=1e-6, l2_sensitivity=2 * 1e-2 / 8
                )
                if with_noise
                else None
            )
            return [
                HonestWorker(
                    worker_id=i,
                    model=model,
                    sampler=BatchSampler(dataset, 8, seeds.generator("batch", i)),
                    noise_rng=seeds.generator("noise", i),
                    g_max=1e-2,
                    mechanism=mechanism,
                    momentum=momentum,
                )
                for i in range(4)
            ]

        parameters = np.linspace(-0.5, 0.5, DIMENSION)
        cohort_workers = build_workers()
        loop_workers = build_workers()
        for step in (1, 2, 3):  # multiple rounds exercise momentum state
            submitted, clean = compute_cohort(cohort_workers, parameters, step)
            loop = [worker.compute(parameters, step) for worker in loop_workers]
            assert np.allclose(
                submitted, np.stack([s.submitted for s in loop]), atol=1e-12
            )
            assert np.allclose(
                clean, np.stack([s.clean for s in loop]), atol=1e-12
            )

    def test_compute_override_wins_over_fast_path(self):
        """A worker subclass overriding compute() must be honoured by
        the cohort path (and therefore by Cluster.step)."""
        seeds = SeedTree(6)
        rng = np.random.default_rng(3)
        dataset = Dataset(
            features=rng.standard_normal((40, NUM_FEATURES)),
            labels=rng.standard_normal(40),
        )
        model = LinearRegressionModel(NUM_FEATURES)

        class ConstantWorker(HonestWorker):
            def compute(self, parameters, step):
                from repro.distributed.messages import WorkerSubmission

                value = np.full(DIMENSION, float(step))
                return WorkerSubmission(submitted=value, clean=value.copy())

        workers = [
            cls(
                worker_id=i,
                model=model,
                sampler=BatchSampler(dataset, 8, seeds.generator("batch", i)),
                noise_rng=seeds.generator("noise", i),
            )
            for i, cls in enumerate([HonestWorker, ConstantWorker, HonestWorker])
        ]
        submitted, clean = compute_cohort(workers, np.zeros(DIMENSION), 4)
        assert np.array_equal(submitted[1], np.full(DIMENSION, 4.0))
        assert np.array_equal(clean[1], np.full(DIMENSION, 4.0))
        assert not np.array_equal(submitted[0], submitted[1])

    def test_heterogeneous_cohort_falls_back(self):
        """Mixed clip modes take the per-worker fallback and still match."""
        seeds = SeedTree(5)
        rng = np.random.default_rng(2)
        dataset = Dataset(
            features=rng.standard_normal((40, NUM_FEATURES)),
            labels=rng.standard_normal(40),
        )
        model = LinearRegressionModel(NUM_FEATURES)

        def build(clip_modes):
            local = SeedTree(5)
            return [
                HonestWorker(
                    worker_id=i,
                    model=model,
                    sampler=BatchSampler(dataset, 8, local.generator("batch", i)),
                    noise_rng=local.generator("noise", i),
                    g_max=1e-2,
                    clip_mode=mode,
                )
                for i, mode in enumerate(clip_modes)
            ]

        del seeds
        parameters = np.zeros(DIMENSION)
        mixed = build(["batch", "per_example", "batch"])
        reference = build(["batch", "per_example", "batch"])
        submitted, clean = compute_cohort(mixed, parameters, 1)
        loop = [worker.compute(parameters, 1) for worker in reference]
        assert np.array_equal(submitted, np.stack([s.submitted for s in loop]))
        assert np.array_equal(clean, np.stack([s.clean for s in loop]))
