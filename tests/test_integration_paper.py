"""Integration tests reproducing the paper's qualitative claims.

Each test runs a short (but real) distributed training and checks the
*shape* of the result the corresponding figure reports.  Batch sizes
and step counts are scaled down to keep the suite fast; the full-scale
reproduction lives in benchmarks/.
"""

import numpy as np
import pytest

from repro.data.datasets import train_test_split
from repro.data.phishing import make_phishing_dataset
from repro.distributed.trainer import train
from repro.models.logistic import LogisticRegressionModel
from repro.rng import generator_from_seed

STEPS = 400


@pytest.fixture(scope="module")
def environment():
    """A reduced phishing task (fewer points/features) for fast runs."""
    dataset = make_phishing_dataset(seed=0)
    train_set, test_set = train_test_split(dataset, 8400, generator_from_seed(1))
    model = LogisticRegressionModel(dataset.num_features, loss_kind="mse")
    return model, train_set, test_set


def run(environment, **kwargs):
    model, train_set, test_set = environment
    defaults = dict(
        model=model,
        train_dataset=train_set,
        test_dataset=test_set,
        num_steps=STEPS,
        n=11,
        f=5,
        batch_size=50,
        eval_every=100,
        seed=1,
    )
    defaults.update(kwargs)
    return train(**defaults)


@pytest.mark.slow
class TestFigure2Shape:
    """b = 50: attacks harmless without DP, harmful with DP."""

    def test_baseline_converges(self, environment):
        result = run(environment, gar="average", f=0)
        assert result.history.max_accuracy > 0.9

    @pytest.mark.parametrize("attack", ["little", "empire"])
    def test_mda_resists_attacks_without_dp(self, environment, attack):
        result = run(environment, gar="mda", attack=attack)
        assert result.history.max_accuracy > 0.88

    def test_mda_under_alie_with_dp_degrades(self, environment):
        attacked = run(environment, gar="mda", attack="little", epsilon=0.2)
        baseline = run(environment, gar="average", f=0)
        assert attacked.history.max_accuracy < baseline.history.max_accuracy - 0.15

    def test_dp_alone_much_better_than_dp_plus_attack(self, environment):
        dp_only = run(environment, gar="average", f=0, epsilon=0.2)
        dp_attacked = run(environment, gar="mda", attack="little", epsilon=0.2)
        assert dp_only.history.max_accuracy > dp_attacked.history.max_accuracy + 0.1


@pytest.mark.slow
class TestFigure3Shape:
    """b = 10: DP noise hampers training even without any attack."""

    def test_no_dp_converges(self, environment):
        result = run(environment, gar="average", f=0, batch_size=10)
        assert result.history.max_accuracy > 0.88

    def test_dp_hampers_even_unattacked(self, environment):
        result = run(environment, gar="average", f=0, batch_size=10, epsilon=0.2)
        clean = run(environment, gar="average", f=0, batch_size=10)
        assert result.history.max_accuracy < clean.history.max_accuracy - 0.2


@pytest.mark.slow
class TestFigure4Shape:
    """b = 500: DP and Byzantine resilience coexist."""

    @pytest.mark.parametrize("attack", ["little", "empire"])
    def test_dp_plus_attack_tolerated_at_large_batch(self, environment, attack):
        result = run(environment, gar="mda", attack=attack, batch_size=500, epsilon=0.2)
        assert result.history.max_accuracy > 0.88

    def test_crossover_between_b50_and_b500(self, environment):
        """The antagonism is batch-size dependent: same attack + DP,
        only b changes."""
        small = run(environment, gar="mda", attack="little", batch_size=50, epsilon=0.2)
        large = run(environment, gar="mda", attack="little", batch_size=500, epsilon=0.2)
        assert large.history.max_accuracy > small.history.max_accuracy + 0.2


@pytest.mark.slow
class TestAveragingFailsUnderAttack:
    """Blanchard et al.'s premise: plain averaging is not resilient."""

    def test_signflip_breaks_averaging(self, environment):
        result = run(
            environment,
            gar="average",
            f=5,
            attack="signflip",
            attack_kwargs={"scale": 5.0},
        )
        baseline = run(environment, gar="average", f=0)
        assert result.history.final_loss > baseline.history.final_loss

    def test_mda_survives_the_same_attack(self, environment):
        result = run(
            environment,
            gar="mda",
            f=5,
            attack="signflip",
            attack_kwargs={"scale": 5.0},
        )
        assert result.history.max_accuracy > 0.88


@pytest.mark.slow
class TestWorkerMomentumMatters:
    """Ablation: worker-side momentum is what defeats ALIE at b = 50
    without DP (El-Mhamdi et al. 2021); server-side momentum leaves MDA
    exposed."""

    def test_server_momentum_weaker_against_alie(self, environment):
        worker_side = run(environment, gar="mda", attack="little", momentum_at="worker")
        server_side = run(environment, gar="mda", attack="little", momentum_at="server")
        assert (
            worker_side.history.max_accuracy
            > server_side.history.max_accuracy + 0.03
        )
