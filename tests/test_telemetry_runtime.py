"""Multiprocess telemetry: queue transport, chief merge, crash evidence.

Shards emit over a chief-created queue; the chief drains and forwards
into one merged trace tagged per source.  The merged trace must stay
schema-valid (per-source ordering), the run must stay bit-identical to
an unobserved one, and a crashed or hung shard must leave a legible
final warning carrying the exit code, failure round, and worker ids.
"""

from dataclasses import replace

import pytest

from repro.data.phishing import make_phishing_dataset
from repro.distributed.runtime import CRASH_EXIT_CODE
from repro.exceptions import ConfigurationError
from repro.models.logistic import LogisticRegressionModel
from repro.pipeline.builder import Experiment
from repro.telemetry import MemorySink, Telemetry, summarize_trace, validate_events


def make_experiment(**overrides):
    settings = dict(
        model=LogisticRegressionModel(6),
        train_dataset=make_phishing_dataset(seed=0, num_points=120, num_features=6),
        num_steps=4,
        n=4,
        f=0,
        gar="average",
        batch_size=10,
        eval_every=100,
        seed=3,
        backend="multiprocess",
        num_shards=2,
    )
    settings.update(overrides)
    return Experiment(**settings)


def observed_run(**overrides):
    sink = MemorySink()
    result = make_experiment(telemetry=Telemetry(sinks=[sink]), **overrides).run()
    return result, sink


class TestMergedTrace:
    def test_merged_trace_is_valid_and_multi_source(self):
        _, sink = observed_run()
        events = validate_events(sink.events)
        assert events[0]["meta"]["backend"] == "multiprocess"
        srcs = {event["src"] for event in events}
        assert srcs == {"chief", "shard:0", "shard:1"}

    def test_chief_and_shard_spans_both_present(self):
        _, sink = observed_run()
        by_src = {}
        for event in sink.by_kind("span"):
            by_src.setdefault(event["src"], set()).add(event["name"])
        # Chief times the round phases; every shard times its cohort.
        assert {"round.publish", "round.wait", "round.server"} <= by_src["chief"]
        assert "round.cohort" in by_src["shard:0"]
        assert "round.cohort" in by_src["shard:1"]

    def test_shard_lifecycle_marks(self):
        _, sink = observed_run()
        starts = sink.named("shard.start")
        stops = sink.named("shard.stop")
        assert {event["src"] for event in starts} == {"shard:0", "shard:1"}
        assert {event["src"] for event in stops} == {"shard:0", "shard:1"}
        for event in starts:
            assert event["attrs"]["workers"]  # which workers the shard owns

    def test_rounds_counted_by_chief_and_every_shard(self):
        _, sink = observed_run()
        summary = summarize_trace(sink.events)
        # 4 rounds seen by the chief and by each of the two shards.
        assert summary["counters"]["rounds"] == 12
        assert summary["steps"] == 4

    def test_run_bit_identical_with_telemetry(self):
        baseline = make_experiment().run()
        observed, _ = observed_run()
        assert (
            observed.final_parameters.tolist()
            == baseline.final_parameters.tolist()
        )
        assert list(observed.history.losses) == list(baseline.history.losses)

    def test_multiprocess_matches_inprocess_under_telemetry(self):
        """Telemetry on both backends preserves the differential
        guarantee: multiprocess ≡ in-process, bit for bit."""
        inprocess, _ = observed_run(backend="inprocess", num_shards=None)
        multiprocess, _ = observed_run()
        assert (
            multiprocess.final_parameters.tolist()
            == inprocess.final_parameters.tolist()
        )


class TestCrashEvidence:
    def crashed_run(self, fail_mode="die", **overrides):
        """Run with shard 1 failing at round 3; return (result, sink)."""
        sink = MemorySink()
        experiment = make_experiment(
            telemetry=Telemetry(sinks=[sink]), **overrides
        )
        specs = [
            replace(spec, fail_step=3, fail_mode=fail_mode)
            if spec.shard_id == 1
            else spec
            for spec in experiment.build_shard_specs()
        ]
        original = experiment.build_shard_specs
        experiment.build_shard_specs = lambda: specs
        try:
            result = experiment.run()
        finally:
            experiment.build_shard_specs = original
        return result, sink

    def test_crashed_shard_leaves_legible_warning(self):
        result, sink = self.crashed_run()
        events = validate_events(sink.events)
        (warning,) = [event for event in events if event["kind"] == "warning"]
        assert warning["src"] == "chief"
        assert warning["name"] == "shard.departed"
        assert "shard 1" in warning["message"]
        attrs = warning["attrs"]
        assert attrs["shard"] == 1
        assert attrs["exit_code"] == CRASH_EXIT_CODE
        assert attrs["fail_step"] == 3
        assert attrs["workers"] == [2, 3]
        summary = summarize_trace(sink.events)
        assert summary["counters"]["shard.departed"] == 1
        assert result.departed == {1: f"process died (code {CRASH_EXIT_CODE})"}

    def test_hung_shard_reports_timeout_reason(self):
        result, sink = self.crashed_run(fail_mode="hang", round_timeout=2.0)
        (warning,) = sink.by_kind("warning")
        assert warning["attrs"]["reason"] == "round timed out"
        assert result.departed == {1: "round timed out"}

    def test_surviving_shard_events_merge_after_crash(self):
        """The dead shard's events stop; the survivor's keep flowing and
        the merged trace stays valid."""
        _, sink = self.crashed_run()
        validate_events(sink.events)
        shard0_rounds = [
            event
            for event in sink.by_kind("counter")
            if event["src"] == "shard:0" and event["name"] == "rounds"
        ]
        assert len(shard0_rounds) == 4
        shard1_spans = [
            event for event in sink.by_kind("span") if event["src"] == "shard:1"
        ]
        # Shard 1 died before writing round 3: at most rounds 1-2 observed.
        assert 1 <= len(shard1_spans) <= 2

    def test_degraded_trace_is_deterministic_under_telemetry(self):
        first, _ = self.crashed_run()
        second, _ = self.crashed_run()
        assert (
            first.final_parameters.tolist() == second.final_parameters.tolist()
        )


class TestInstallationRules:
    def test_telemetry_must_be_installed_before_start(self):
        experiment = make_experiment()
        with experiment.build_multiprocess_cluster() as runtime:
            with pytest.raises(ConfigurationError, match="before the runtime starts"):
                runtime.telemetry = Telemetry(sinks=[MemorySink()])
            runtime.step()

    def test_no_queue_created_without_telemetry(self):
        experiment = make_experiment()
        with experiment.build_multiprocess_cluster() as runtime:
            runtime.step()
            assert runtime.telemetry is None
