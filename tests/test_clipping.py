"""Tests for L2 clipping, including hypothesis property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import PrivacyError
from repro.privacy.clipping import clip_by_l2_norm, clip_per_example

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestClipByL2Norm:
    def test_within_bound_unchanged(self):
        vector = np.array([0.3, 0.4])  # norm 0.5
        assert np.array_equal(clip_by_l2_norm(vector, 1.0), vector)

    def test_scaled_to_bound(self):
        vector = np.array([3.0, 4.0])  # norm 5
        clipped = clip_by_l2_norm(vector, 1.0)
        assert np.linalg.norm(clipped) == pytest.approx(1.0)
        # Direction preserved.
        assert np.allclose(clipped / np.linalg.norm(clipped), vector / 5.0)

    def test_zero_vector_unchanged(self):
        vector = np.zeros(4)
        assert np.array_equal(clip_by_l2_norm(vector, 0.01), vector)

    def test_invalid_max_norm(self):
        with pytest.raises(PrivacyError):
            clip_by_l2_norm(np.ones(2), 0.0)

    @given(arrays(np.float64, st.integers(1, 20), elements=finite_floats))
    @settings(max_examples=50, deadline=None)
    def test_property_norm_bounded(self, vector):
        clipped = clip_by_l2_norm(vector, 0.5)
        assert np.linalg.norm(clipped) <= 0.5 * (1 + 1e-9)

    @given(arrays(np.float64, st.integers(1, 20), elements=finite_floats))
    @settings(max_examples=50, deadline=None)
    def test_property_idempotent(self, vector):
        once = clip_by_l2_norm(vector, 0.5)
        twice = clip_by_l2_norm(once, 0.5)
        assert np.allclose(once, twice)

    @given(arrays(np.float64, st.integers(1, 20), elements=finite_floats))
    @settings(max_examples=50, deadline=None)
    def test_property_direction_preserved(self, vector):
        norm = np.linalg.norm(vector)
        clipped = clip_by_l2_norm(vector, 0.5)
        if norm > 0:
            cosine = float(np.dot(vector, clipped))
            assert cosine >= 0


class TestClipPerExample:
    def test_rows_clipped_independently(self):
        gradients = np.array([[3.0, 4.0], [0.03, 0.04]])
        clipped = clip_per_example(gradients, 1.0)
        assert np.linalg.norm(clipped[0]) == pytest.approx(1.0)
        assert np.array_equal(clipped[1], gradients[1])

    def test_zero_rows_survive(self):
        gradients = np.vstack([np.zeros(3), np.ones(3)])
        clipped = clip_per_example(gradients, 0.1)
        assert np.array_equal(clipped[0], np.zeros(3))

    def test_1d_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            clip_per_example(np.ones(3), 1.0)

    def test_invalid_max_norm(self):
        with pytest.raises(PrivacyError):
            clip_per_example(np.ones((2, 2)), -1.0)

    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(1, 8), st.integers(1, 8)),
            elements=finite_floats,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_property_all_rows_bounded(self, gradients):
        clipped = clip_per_example(gradients, 0.7)
        norms = np.linalg.norm(clipped, axis=1)
        assert np.all(norms <= 0.7 * (1 + 1e-9))

    def test_matches_vector_clipping_row_by_row(self):
        rng = np.random.default_rng(0)
        gradients = rng.standard_normal((5, 4))
        clipped = clip_per_example(gradients, 0.3)
        for row, clipped_row in zip(gradients, clipped):
            assert np.allclose(clipped_row, clip_by_l2_norm(row, 0.3))
