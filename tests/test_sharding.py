"""Tests for data sharding and the non-IID training extension."""

import numpy as np
import pytest

from repro.data.datasets import Dataset
from repro.data.phishing import make_phishing_dataset
from repro.data.sharding import shard_by_label, shard_iid
from repro.distributed.trainer import train
from repro.exceptions import ConfigurationError, DataError
from repro.models.logistic import LogisticRegressionModel
from repro.rng import generator_from_seed


def dataset(n=100, d=4, seed=0):
    rng = np.random.default_rng(seed)
    return Dataset(
        features=rng.random((n, d)),
        labels=(rng.random(n) < 0.5).astype(float),
        name="toy",
    )


class TestShardIID:
    def test_partition(self):
        data = dataset(n=100)
        shards = shard_iid(data, 7, generator_from_seed(0))
        assert len(shards) == 7
        assert sum(s.num_points for s in shards) == 100
        # Disjoint: every original row appears exactly once overall.
        combined = np.vstack([s.features for s in shards])
        assert {tuple(r) for r in combined} == {tuple(r) for r in data.features}

    def test_near_equal_sizes(self):
        shards = shard_iid(dataset(n=100), 7, generator_from_seed(0))
        sizes = [s.num_points for s in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_deterministic(self):
        a = shard_iid(dataset(), 4, generator_from_seed(5))
        b = shard_iid(dataset(), 4, generator_from_seed(5))
        for shard_a, shard_b in zip(a, b):
            assert np.array_equal(shard_a.features, shard_b.features)

    def test_balanced_labels_approximately(self):
        data = dataset(n=2000)
        shards = shard_iid(data, 4, generator_from_seed(0))
        overall = data.labels.mean()
        for shard in shards:
            assert shard.labels.mean() == pytest.approx(overall, abs=0.08)

    @pytest.mark.parametrize("bad", [0, -1, 101])
    def test_validation(self, bad):
        with pytest.raises(DataError):
            shard_iid(dataset(n=100), bad, generator_from_seed(0))


class TestShardByLabel:
    def test_partition(self):
        data = dataset(n=100)
        shards = shard_by_label(data, 5, generator_from_seed(0))
        assert sum(s.num_points for s in shards) == 100

    def test_extreme_skew(self):
        data = dataset(n=1000)
        shards = shard_by_label(data, 2, generator_from_seed(0))
        # First shard dominated by label 0, last by label 1.
        assert shards[0].labels.mean() < 0.2
        assert shards[-1].labels.mean() > 0.8

    def test_names_distinct(self):
        shards = shard_by_label(dataset(), 3, generator_from_seed(0))
        assert len({s.name for s in shards}) == 3


class TestNonIIDTraining:
    @pytest.fixture(scope="class")
    def environment(self):
        data = make_phishing_dataset(seed=0, num_points=1200, num_features=10)
        model = LogisticRegressionModel(10, loss_kind="mse")
        return model, data

    def test_iid_shards_train(self, environment):
        model, data = environment
        result = train(
            model=model, train_dataset=data, num_steps=60, n=7, f=3,
            gar="mda", batch_size=10, data_distribution="iid-shards", seed=1,
        )
        assert result.config["data_distribution"] == "iid-shards"
        assert result.history.min_loss < result.history.losses[0]

    def test_label_shards_inflate_gradient_disagreement(self, environment):
        """Under label sharding the honest workers disagree more: the
        cross-worker gradient variance (the VN numerator) grows."""
        from repro.analysis.monitor import VNRatioMonitor

        model, data = environment

        def median_clean_ratio(distribution):
            from repro.data.batching import BatchSampler
            from repro.data.sharding import shard_by_label, shard_iid
            from repro.distributed.cluster import Cluster
            from repro.distributed.server import ParameterServer
            from repro.distributed.worker import HonestWorker
            from repro.gars import get_gar
            from repro.optim.sgd import SGDOptimizer
            from repro.rng import SeedTree

            seeds = SeedTree(3)
            if distribution == "iid":
                shards = shard_iid(data, 7, seeds.generator("s"))
            else:
                shards = shard_by_label(data, 7, seeds.generator("s"))
            workers = [
                HonestWorker(
                    worker_id=i,
                    model=model,
                    sampler=BatchSampler(shards[i], 10, seeds.generator("b", i)),
                    noise_rng=seeds.generator("n", i),
                    g_max=1e-2,
                )
                for i in range(7)
            ]
            server = ParameterServer(
                initial_parameters=model.initial_parameters(),
                gar=get_gar("median", 7, 0),
                optimizer=SGDOptimizer(2.0),
            )
            cluster = Cluster(server=server, honest_workers=workers)
            monitor = VNRatioMonitor(cluster)
            for _ in range(15):
                monitor.observe(cluster.step())
            return monitor.trajectory.median_ratio("clean")

        assert median_clean_ratio("label") > median_clean_ratio("iid")

    def test_invalid_distribution(self, environment):
        model, data = environment
        with pytest.raises(ConfigurationError, match="data_distribution"):
            train(
                model=model, train_dataset=data, num_steps=5, n=7, f=3,
                gar="mda", batch_size=10, data_distribution="mystery", seed=1,
            )

    def test_shared_is_default(self, environment):
        model, data = environment
        result = train(
            model=model, train_dataset=data, num_steps=5, n=7, f=3,
            gar="mda", batch_size=10, seed=1,
        )
        assert result.config["data_distribution"] == "shared"
