"""Tests for the parallel multi-seed executor."""

import numpy as np
import pytest

from repro.data.datasets import train_test_split
from repro.data.phishing import make_phishing_dataset
from repro.exceptions import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_config, run_grid
from repro.models.logistic import LogisticRegressionModel
from repro.pipeline.parallel import TrainingJob, execute_job, jobs_for_seeds, run_jobs
from repro.rng import generator_from_seed


@pytest.fixture(scope="module")
def tiny_environment():
    dataset = make_phishing_dataset(seed=0, num_points=400, num_features=8)
    train_set, test_set = train_test_split(dataset, 300, generator_from_seed(1))
    model = LogisticRegressionModel(8, loss_kind="mse")
    return model, train_set, test_set


def tiny_config(name="cell", **overrides):
    defaults = dict(
        name=name,
        num_steps=15,
        n=7,
        f=3,
        gar="mda",
        batch_size=8,
        eval_every=5,
        seeds=(1, 2, 3),
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestRunJobs:
    def test_serial_matches_parallel_bit_for_bit(self, tiny_environment):
        model, train_set, test_set = tiny_environment
        jobs = jobs_for_seeds(
            model, train_set, test_set, seeds=(1, 2, 3),
            num_steps=10, n=7, f=3, gar="mda", attack="little",
            epsilon=0.3, batch_size=8, eval_every=5,
        )
        serial = run_jobs(jobs, max_workers=None)
        parallel = run_jobs(jobs, max_workers=2)
        assert len(serial) == len(parallel) == 3
        for left, right in zip(serial, parallel):
            assert np.array_equal(left.final_parameters, right.final_parameters)
            assert np.array_equal(left.history.losses, right.history.losses)
            assert np.array_equal(left.history.accuracies, right.history.accuracies)
            assert left.config == right.config

    def test_single_job_runs_in_process(self, tiny_environment):
        model, train_set, _ = tiny_environment
        jobs = jobs_for_seeds(
            model, train_set, None, seeds=(5,),
            num_steps=5, n=7, f=3, gar="mda", batch_size=8,
        )
        results = run_jobs(jobs, max_workers=8)
        assert len(results) == 1
        assert results[0].config["seed"] == 5

    def test_invalid_max_workers(self):
        with pytest.raises(ConfigurationError, match="max_workers"):
            run_jobs([], max_workers=0)

    def test_execute_job(self, tiny_environment):
        model, train_set, _ = tiny_environment
        job = TrainingJob(
            model=model,
            train_dataset=train_set,
            train_kwargs=dict(num_steps=4, n=7, f=3, gar="mda", batch_size=8, seed=9),
        )
        result = execute_job(job)
        assert len(result.history.losses) == 4


class TestRunConfigParallel:
    def test_max_workers_equivalent_histories(self, tiny_environment):
        model, train_set, test_set = tiny_environment
        config = tiny_config(attack="empire", epsilon=0.5)
        serial = run_config(config, model, train_set, test_set)
        parallel = run_config(config, model, train_set, test_set, max_workers=2)
        assert len(serial.histories) == len(parallel.histories) == 3
        for left, right in zip(serial.histories, parallel.histories):
            assert np.array_equal(left.losses, right.losses)
            assert np.array_equal(left.accuracies, right.accuracies)
        assert np.array_equal(serial.loss_stats.mean, parallel.loss_stats.mean)
        assert np.array_equal(
            serial.accuracy_stats.mean, parallel.accuracy_stats.mean
        )
        assert serial.privacy.per_step.epsilon == parallel.privacy.per_step.epsilon

    def test_run_grid_accepts_max_workers(self, tiny_environment):
        model, train_set, test_set = tiny_environment
        configs = [tiny_config("a", seeds=(1, 2)), tiny_config("b", epsilon=0.4, seeds=(1, 2))]
        serial = run_grid(configs, model, train_set, test_set)
        parallel = run_grid(configs, model, train_set, test_set, max_workers=2)
        assert set(parallel) == {"a", "b"}
        for name in serial:
            assert np.array_equal(
                serial[name].loss_stats.mean, parallel[name].loss_stats.mean
            )


def _double(x):
    return x * 2


class TestChunksizeHeuristic:
    def test_default_chunksize_values(self):
        from repro.pipeline.parallel import default_chunksize

        assert default_chunksize(1, 4) == 1
        assert default_chunksize(16, 4) == 1
        assert default_chunksize(64, 4) == 4
        assert default_chunksize(400, 4) == 25
        assert default_chunksize(0, 4) == 1
        assert default_chunksize(10, 0) == 1

    def test_map_tasks_auto_chunksize_matches_serial(self):
        from repro.pipeline.parallel import map_tasks

        tasks = list(range(40))
        serial = list(map_tasks(_double, tasks))
        auto = list(map_tasks(_double, tasks, max_workers=2, chunksize=None))
        assert auto == serial

    def test_map_tasks_auto_chunksize_unordered_same_multiset(self):
        from repro.pipeline.parallel import map_tasks

        tasks = list(range(40))
        unordered = list(
            map_tasks(_double, tasks, max_workers=2, chunksize=None, ordered=False)
        )
        assert sorted(unordered) == [x * 2 for x in tasks]

    def test_explicit_chunksize_still_validated(self):
        from repro.pipeline.parallel import map_tasks

        with pytest.raises(ConfigurationError, match="chunksize"):
            list(map_tasks(_double, [1, 2], max_workers=2, chunksize=0))
