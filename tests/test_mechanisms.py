"""Tests for the Gaussian and Laplace mechanisms and sensitivity calculus."""

import math

import numpy as np
import pytest

from repro.exceptions import PrivacyError
from repro.privacy.mechanisms import GaussianMechanism, LaplaceMechanism
from repro.privacy.sensitivity import (
    batch_mean_l1_sensitivity,
    batch_mean_l2_sensitivity,
)
from repro.rng import generator_from_seed


class TestSensitivity:
    def test_l2_formula(self):
        assert batch_mean_l2_sensitivity(0.01, 50) == pytest.approx(2 * 0.01 / 50)

    def test_l2_decreases_with_batch(self):
        assert batch_mean_l2_sensitivity(1.0, 100) < batch_mean_l2_sensitivity(1.0, 10)

    def test_l1_formula(self):
        assert batch_mean_l1_sensitivity(0.01, 50, 69) == pytest.approx(
            2 * math.sqrt(69) * 0.01 / 50
        )

    def test_l1_at_least_l2(self):
        assert batch_mean_l1_sensitivity(1.0, 10, 4) >= batch_mean_l2_sensitivity(1.0, 10)

    @pytest.mark.parametrize("kwargs", [
        {"g_max": 0.0, "batch_size": 10},
        {"g_max": 1.0, "batch_size": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(PrivacyError):
            batch_mean_l2_sensitivity(**kwargs)


class TestGaussianMechanism:
    def test_paper_noise_scale(self):
        """Section 5.1's setup: G_max = 1e-2, b = 50, eps = 0.2, delta = 1e-6."""
        mechanism = GaussianMechanism.for_clipped_gradients(0.2, 1e-6, 1e-2, 50)
        expected = 2 * 1e-2 * math.sqrt(2 * math.log(1.25 / 1e-6)) / (50 * 0.2)
        assert mechanism.sigma == pytest.approx(expected)

    def test_sigma_decreases_with_epsilon(self):
        low = GaussianMechanism(0.1, 1e-6, 1.0)
        high = GaussianMechanism(0.9, 1e-6, 1.0)
        assert high.sigma < low.sigma

    def test_sigma_decreases_with_delta(self):
        strict = GaussianMechanism(0.5, 1e-9, 1.0)
        loose = GaussianMechanism(0.5, 1e-3, 1.0)
        assert loose.sigma < strict.sigma

    def test_sigma_scales_with_sensitivity(self):
        a = GaussianMechanism(0.5, 1e-6, 1.0)
        b = GaussianMechanism(0.5, 1e-6, 2.0)
        assert b.sigma == pytest.approx(2 * a.sigma)

    @pytest.mark.parametrize("epsilon", [0.0, 1.0, 1.5, -0.1])
    def test_epsilon_must_be_in_unit_interval(self, epsilon):
        with pytest.raises(PrivacyError, match="epsilon"):
            GaussianMechanism(epsilon, 1e-6, 1.0)

    @pytest.mark.parametrize("delta", [0.0, 1.0, -0.1])
    def test_delta_must_be_in_unit_interval(self, delta):
        with pytest.raises(PrivacyError, match="delta"):
            GaussianMechanism(0.5, delta, 1.0)

    def test_noise_is_zero_mean_with_right_std(self):
        mechanism = GaussianMechanism(0.5, 1e-6, 1.0)
        rng = generator_from_seed(0)
        noise = mechanism.sample_noise(200_000, rng)
        assert abs(float(noise.mean())) < 0.05 * mechanism.sigma + 1e-3
        assert float(noise.std()) == pytest.approx(mechanism.sigma, rel=0.02)

    def test_privatize_adds_noise(self):
        mechanism = GaussianMechanism(0.5, 1e-6, 1.0)
        gradient = np.ones(10)
        noisy = mechanism.privatize(gradient, generator_from_seed(1))
        assert noisy.shape == gradient.shape
        assert not np.array_equal(noisy, gradient)

    def test_privatize_does_not_mutate(self):
        mechanism = GaussianMechanism(0.5, 1e-6, 1.0)
        gradient = np.ones(5)
        mechanism.privatize(gradient, generator_from_seed(1))
        assert np.array_equal(gradient, np.ones(5))

    def test_privatize_deterministic_given_rng(self):
        mechanism = GaussianMechanism(0.5, 1e-6, 1.0)
        a = mechanism.privatize(np.zeros(8), generator_from_seed(2))
        b = mechanism.privatize(np.zeros(8), generator_from_seed(2))
        assert np.array_equal(a, b)

    def test_total_noise_variance_linear_in_d(self):
        """The 'curse of dimensionality': E||y||^2 = d s^2 (Eq. 8's term)."""
        mechanism = GaussianMechanism(0.5, 1e-6, 1.0)
        assert mechanism.total_noise_variance(100) == pytest.approx(
            100 * mechanism.sigma**2
        )
        assert mechanism.total_noise_variance(200) == pytest.approx(
            2 * mechanism.total_noise_variance(100)
        )

    def test_noise_multiplier(self):
        mechanism = GaussianMechanism(0.5, 1e-6, 2.0)
        assert mechanism.noise_multiplier == pytest.approx(mechanism.sigma / 2.0)

    def test_rejects_2d_gradient(self):
        mechanism = GaussianMechanism(0.5, 1e-6, 1.0)
        with pytest.raises(ValueError):
            mechanism.privatize(np.zeros((2, 2)), generator_from_seed(0))


class TestLaplaceMechanism:
    def test_scale_formula(self):
        mechanism = LaplaceMechanism(0.5, 2.0)
        assert mechanism.scale == pytest.approx(4.0)

    def test_pure_dp(self):
        assert LaplaceMechanism(0.5, 1.0).delta == 0.0

    def test_variance_formula(self):
        mechanism = LaplaceMechanism(0.5, 1.0)
        assert mechanism.per_coordinate_variance == pytest.approx(2 * mechanism.scale**2)

    def test_empirical_variance(self):
        mechanism = LaplaceMechanism(0.5, 1.0)
        noise = mechanism.sample_noise(200_000, generator_from_seed(3))
        assert float(noise.var()) == pytest.approx(
            mechanism.per_coordinate_variance, rel=0.05
        )

    def test_for_clipped_gradients_uses_l1(self):
        mechanism = LaplaceMechanism.for_clipped_gradients(0.5, 0.01, 50, 69)
        assert mechanism.l1_sensitivity == pytest.approx(
            batch_mean_l1_sensitivity(0.01, 50, 69)
        )

    def test_epsilon_above_one_allowed(self):
        """Unlike Gaussian, Laplace has no epsilon < 1 restriction."""
        mechanism = LaplaceMechanism(2.0, 1.0)
        assert mechanism.epsilon == 2.0

    def test_invalid_epsilon(self):
        with pytest.raises(PrivacyError):
            LaplaceMechanism(0.0, 1.0)

    def test_laplace_noisier_than_gaussian_same_budget(self):
        """For the same (eps, delta<1) budget on a d-dim gradient the
        Laplace route (L1 = sqrt(d) L2) injects more total variance —
        Remark 3's observation that the findings transfer."""
        d, g_max, b = 69, 0.01, 50
        gaussian = GaussianMechanism.for_clipped_gradients(0.5, 1e-6, g_max, b)
        laplace = LaplaceMechanism.for_clipped_gradients(0.5, g_max, b, d)
        assert laplace.total_noise_variance(d) > gaussian.total_noise_variance(d)
