"""Cross-cutting property tests every GAR must satisfy.

These are the structural invariants of aggregation rules:
unanimity, permutation invariance, translation equivariance, positive
scale equivariance, coordinate-range boundedness, and input validation.
Property-based variants use hypothesis.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import AggregationError
from repro.gars import GAR_REGISTRY, available_gars, get_gar
from tests.helpers import random_gradient_matrix

# (name, n, f, kwargs) — a valid instantiation per rule.
VALID_SETUPS = [
    ("average", 11, 0, {}),
    ("median", 11, 5, {}),
    ("trimmed-mean", 11, 5, {}),
    ("krum", 11, 4, {}),
    ("krum", 11, 3, {"m": 3}),
    ("mda", 11, 5, {}),
    ("bulyan", 11, 2, {}),
    ("meamed", 11, 5, {}),
    ("phocas", 11, 5, {}),
    ("oracle", 11, 5, {"honest_index": 2}),
]

IDS = [f"{name}-n{n}-f{f}{'-' + str(kw) if kw else ''}" for name, n, f, kw in VALID_SETUPS]


@pytest.fixture(params=VALID_SETUPS, ids=IDS)
def gar(request):
    name, n, f, kwargs = request.param
    return get_gar(name, n, f, **kwargs)


class TestStructuralProperties:
    def test_unanimity(self, gar):
        """All workers submitting v must aggregate to exactly v."""
        vector = np.array([1.5, -2.0, 0.0, 3.25])
        gradients = np.tile(vector, (gar.n, 1))
        assert np.allclose(gar.aggregate(gradients), vector)

    def test_permutation_invariance(self, gar):
        if gar.name == "oracle":
            pytest.skip("oracle is index-based by design")
        gradients = random_gradient_matrix(gar.n, 6, seed=1)
        base = gar.aggregate(gradients)
        rng = np.random.default_rng(2)
        for _ in range(3):
            permuted = gradients[rng.permutation(gar.n)]
            assert np.allclose(gar.aggregate(permuted), base)

    def test_translation_equivariance(self, gar):
        """F(g + c) = F(g) + c for a constant shift c."""
        gradients = random_gradient_matrix(gar.n, 5, seed=3)
        shift = np.array([10.0, -5.0, 0.5, 2.0, -1.0])
        base = gar.aggregate(gradients)
        shifted = gar.aggregate(gradients + shift[None, :])
        assert np.allclose(shifted, base + shift, atol=1e-9)

    def test_positive_scale_equivariance(self, gar):
        """F(c g) = c F(g) for c > 0."""
        gradients = random_gradient_matrix(gar.n, 5, seed=4)
        base = gar.aggregate(gradients)
        assert np.allclose(gar.aggregate(3.0 * gradients), 3.0 * base, atol=1e-9)

    def test_output_within_coordinate_range(self, gar):
        """Each output coordinate lies in the submitted values' range."""
        gradients = random_gradient_matrix(gar.n, 7, seed=5)
        output = gar.aggregate(gradients)
        low = gradients.min(axis=0) - 1e-12
        high = gradients.max(axis=0) + 1e-12
        assert np.all(output >= low)
        assert np.all(output <= high)

    def test_output_shape_and_dtype(self, gar):
        output = gar.aggregate(random_gradient_matrix(gar.n, 9, seed=6))
        assert output.shape == (9,)
        assert output.dtype == np.float64

    def test_deterministic(self, gar):
        gradients = random_gradient_matrix(gar.n, 4, seed=7)
        assert np.array_equal(gar.aggregate(gradients), gar.aggregate(gradients))

    def test_accepts_list_of_vectors(self, gar):
        gradients = random_gradient_matrix(gar.n, 4, seed=8)
        as_list = [row for row in gradients]
        assert np.allclose(gar.aggregate(as_list), gar.aggregate(gradients))


class TestValidation:
    def test_wrong_worker_count_rejected(self, gar):
        with pytest.raises(AggregationError, match="n="):
            gar.aggregate(random_gradient_matrix(gar.n + 1, 4, seed=0))

    def test_non_finite_rejected(self, gar):
        gradients = random_gradient_matrix(gar.n, 4, seed=0)
        gradients[0, 0] = np.nan
        with pytest.raises(AggregationError, match="non-finite"):
            gar.aggregate(gradients)

    def test_k_f_nonnegative(self, gar):
        assert gar.k_f() >= 0.0


class TestRegistry:
    def test_available_sorted(self):
        names = available_gars()
        assert list(names) == sorted(names)
        assert "mda" in names and "krum" in names

    def test_unknown_name(self):
        with pytest.raises(AggregationError, match="unknown GAR"):
            get_gar("does-not-exist", 11, 5)

    def test_registry_names_match_classes(self):
        for name, cls in GAR_REGISTRY.items():
            assert cls.name == name

    def test_f_at_least_zero(self):
        with pytest.raises(AggregationError):
            get_gar("median", 11, -1)

    def test_f_below_n(self):
        with pytest.raises(AggregationError):
            get_gar("median", 5, 5)


class TestHypothesisProperties:
    @given(
        data=st.data(),
        n_and_f=st.sampled_from([("median", 5, 2), ("trimmed-mean", 7, 3), ("mda", 7, 3)]),
    )
    @settings(max_examples=30, deadline=None)
    def test_unanimity_random_vectors(self, data, n_and_f):
        name, n, f = n_and_f
        gar = get_gar(name, n, f)
        vector = np.array(
            data.draw(
                st.lists(
                    st.floats(-100, 100, allow_nan=False), min_size=3, max_size=3
                )
            )
        )
        assert np.allclose(gar.aggregate(np.tile(vector, (n, 1))), vector)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_median_between_extremes(self, seed):
        gar = get_gar("median", 9, 4)
        gradients = random_gradient_matrix(9, 5, seed=seed)
        output = gar.aggregate(gradients)
        assert np.all(output >= gradients.min(axis=0))
        assert np.all(output <= gradients.max(axis=0))
