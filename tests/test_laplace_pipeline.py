"""Remark 3 end-to-end: the antagonism is not Gaussian-specific.

The paper notes its findings "remain unchanged when adapting our
results to support other noise injection techniques such as the
Laplacian mechanism".  These tests run the full pipeline with Laplace
noise and check the same qualitative shapes appear.
"""

import pytest

from repro.data.datasets import train_test_split
from repro.data.phishing import make_phishing_dataset
from repro.distributed.trainer import train
from repro.models.logistic import LogisticRegressionModel
from repro.privacy.mechanisms import GaussianMechanism, LaplaceMechanism
from repro.rng import generator_from_seed


@pytest.fixture(scope="module")
def environment():
    dataset = make_phishing_dataset(seed=0)
    train_set, test_set = train_test_split(dataset, 8400, generator_from_seed(1))
    model = LogisticRegressionModel(dataset.num_features, loss_kind="mse")
    return model, train_set, test_set


def run(environment, **kwargs):
    model, train_set, test_set = environment
    defaults = dict(
        model=model,
        train_dataset=train_set,
        test_dataset=test_set,
        num_steps=300,
        n=11,
        f=5,
        batch_size=50,
        eval_every=100,
        seed=1,
    )
    defaults.update(kwargs)
    return train(**defaults)


class TestLaplaceAntagonism:
    @pytest.mark.slow
    def test_laplace_breaks_mda_under_attack_at_b50(self, environment):
        attacked = run(
            environment, gar="mda", attack="little",
            epsilon=0.2, noise_kind="laplace",
        )
        clean = run(environment, gar="mda", attack="little")
        assert attacked.history.max_accuracy < clean.history.max_accuracy - 0.2

    @pytest.mark.slow
    def test_laplace_noisier_than_gaussian_in_training(self, environment):
        """Same epsilon, higher variance (L1 calibration scales with
        sqrt(d)): Laplace training degrades at least as much."""
        laplace = run(
            environment, gar="average", f=0, epsilon=0.5, noise_kind="laplace"
        )
        gaussian = run(
            environment, gar="average", f=0, epsilon=0.5, noise_kind="gaussian"
        )
        assert laplace.history.min_loss >= gaussian.history.min_loss - 0.02

    def test_variance_ordering_matches_theory(self):
        d, g_max, b = 69, 1e-2, 50
        gaussian = GaussianMechanism.for_clipped_gradients(0.5, 1e-6, g_max, b)
        laplace = LaplaceMechanism.for_clipped_gradients(0.5, g_max, b, d)
        assert laplace.total_noise_variance(d) > gaussian.total_noise_variance(d)

    @pytest.mark.slow
    def test_laplace_epsilon_above_one_usable(self, environment):
        """Laplace supports eps >= 1 (pure DP); at weak privacy the
        training recovers — the graceful trade-off, Laplace edition."""
        weak = run(
            environment, gar="average", f=0, epsilon=0.999, noise_kind="laplace",
            batch_size=500,
        )
        assert weak.history.max_accuracy > 0.8
