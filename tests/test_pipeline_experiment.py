"""Tests for the Experiment builder, training loop, and callbacks."""

import numpy as np
import pytest

from repro.data.datasets import train_test_split
from repro.data.phishing import make_phishing_dataset
from repro.distributed.trainer import train
from repro.exceptions import ConfigurationError
from repro.models.logistic import LogisticRegressionModel
from repro.pipeline import (
    AccuracyCallback,
    Callback,
    CallbackList,
    EarlyStopping,
    Experiment,
    StepResultRecorder,
    TrainingLoop,
    VNRatioCallback,
)
from repro.rng import generator_from_seed

NUM_STEPS = 20


@pytest.fixture(scope="module")
def environment():
    dataset = make_phishing_dataset(seed=0, num_points=600, num_features=10)
    train_set, test_set = train_test_split(dataset, 450, generator_from_seed(1))
    model = LogisticRegressionModel(10, loss_kind="mse")
    return model, train_set, test_set


def make_experiment(environment, **overrides):
    model, train_set, test_set = environment
    defaults = dict(
        model=model,
        train_dataset=train_set,
        test_dataset=test_set,
        num_steps=NUM_STEPS,
        n=7,
        f=3,
        gar="mda",
        batch_size=10,
        eval_every=10,
        seed=1,
    )
    defaults.update(overrides)
    return Experiment(**defaults)


class RecordingCallback(Callback):
    """Logs every hook invocation for ordering assertions."""

    def __init__(self):
        self.events = []

    def on_train_start(self, state):
        self.events.append(("train_start", state.step))

    def on_step_start(self, state):
        self.events.append(("step_start", state.step))

    def on_step_end(self, state, result):
        self.events.append(("step_end", state.step))

    def on_evaluate(self, state, step, accuracy):
        self.events.append(("evaluate", step))

    def on_train_end(self, state):
        self.events.append(("train_end", state.step))

    def should_stop(self, state):
        self.events.append(("should_stop", state.step))
        return False


class TestEquivalenceWithTrain:
    def test_same_run_bit_identical(self, environment):
        model, train_set, test_set = environment
        kwargs = dict(
            model=model,
            train_dataset=train_set,
            test_dataset=test_set,
            num_steps=NUM_STEPS,
            n=7,
            f=3,
            gar="mda",
            attack="little",
            epsilon=0.4,
            batch_size=10,
            eval_every=10,
            seed=3,
        )
        legacy = train(**kwargs)
        built = Experiment(**kwargs).run()
        assert np.array_equal(legacy.final_parameters, built.final_parameters)
        assert np.array_equal(legacy.history.losses, built.history.losses)
        assert np.array_equal(legacy.history.accuracies, built.history.accuracies)
        assert legacy.config == built.config

    def test_spec_driven_construction_identical(self, environment):
        baseline = make_experiment(environment, attack="empire", seed=5).run()
        spec_built = make_experiment(
            environment,
            gar={"name": "mda"},
            attack={"name": "empire", "factor": 1.1},
            learning_rate={"name": "constant", "learning_rate": 2.0},
            seed=5,
        ).run()
        assert np.array_equal(
            baseline.final_parameters, spec_built.final_parameters
        )

    def test_rerun_is_identical(self, environment):
        experiment = make_experiment(environment, attack="little", epsilon=0.3)
        first = experiment.run()
        second = experiment.run()
        assert np.array_equal(first.final_parameters, second.final_parameters)
        assert np.array_equal(first.history.losses, second.history.losses)

    def test_stage_order_does_not_matter(self, environment):
        eager = make_experiment(environment, seed=7)
        eager.build_server()  # server before workers, reversed vs run()
        eager.build_workers()
        lazy = make_experiment(environment, seed=7)
        assert np.array_equal(
            eager.run().final_parameters, lazy.run().final_parameters
        )


class TestStages:
    def test_build_data_shards(self, environment):
        experiment = make_experiment(environment, data_distribution="iid-shards")
        shards = experiment.build_data()
        assert len(shards) == 7  # n - num_byzantine, no attack
        total = sum(shard.num_points for shard in shards)
        assert total == experiment.train_dataset.num_points

    def test_build_workers(self, environment):
        experiment = make_experiment(environment, attack="little", epsilon=0.5)
        workers = experiment.build_workers()
        assert len(workers) == 4  # n=7, f=3 attacking
        assert all(worker.uses_dp for worker in workers)

    def test_build_server_and_cluster(self, environment):
        experiment = make_experiment(environment)
        server = experiment.build_server()
        assert server.gar.name == "mda"
        cluster = experiment.build_cluster()
        assert cluster.n == 7
        assert cluster.server is server

    def test_from_config(self, environment):
        from repro.experiments.config import ExperimentConfig

        model, train_set, test_set = environment
        config = ExperimentConfig(
            name="cell", num_steps=NUM_STEPS, n=7, f=3, gar="mda",
            batch_size=10, eval_every=10, seeds=(4,),
        )
        via_config = Experiment.from_config(config, model, train_set, test_set).run()
        direct = make_experiment(environment, seed=4).run()
        assert np.array_equal(via_config.final_parameters, direct.final_parameters)

    def test_unknown_distribution_rejected_at_construction(self, environment):
        with pytest.raises(ConfigurationError, match="data_distribution"):
            make_experiment(environment, data_distribution="bogus")

    def test_unknown_network_rejected_at_construction(self, environment):
        with pytest.raises(ConfigurationError, match="network"):
            make_experiment(environment, network="carrier-pigeon")

    def test_invalid_callback_rejected(self, environment):
        with pytest.raises(ConfigurationError, match="Callback"):
            make_experiment(environment, callbacks=[object()]).run()


class TestCallbacks:
    def test_hook_ordering(self, environment):
        recorder = RecordingCallback()
        make_experiment(environment, num_steps=3, eval_every=2,
                        callbacks=[recorder]).run()
        expected = [
            ("train_start", 0),
            ("evaluate", 0),  # AccuracyCallback's step-0 evaluation
            ("should_stop", 0),
            ("step_start", 0),
            ("step_end", 1),
            ("should_stop", 1),
            ("step_start", 1),
            ("step_end", 2),
            ("evaluate", 2),
            ("should_stop", 2),
            ("step_start", 2),
            ("step_end", 3),
            ("train_end", 3),
        ]
        assert recorder.events == expected

    def test_early_stopping_threshold(self, environment):
        stopper = EarlyStopping(loss_threshold=1e9)  # met at the first step
        result = make_experiment(
            environment, num_steps=10, callbacks=[stopper]
        ).run()
        assert stopper.triggered
        assert len(result.history.losses) == 1

    def test_early_stopping_patience(self, environment):
        stopper = EarlyStopping(patience=2, min_delta=1e9)  # never "improves"
        result = make_experiment(
            environment, num_steps=10, callbacks=[stopper]
        ).run()
        assert stopper.triggered
        # Step 1 sets the best; steps 2 and 3 exhaust the patience of 2.
        assert len(result.history.losses) == 3

    def test_early_stopping_validation(self):
        with pytest.raises(ConfigurationError):
            EarlyStopping()
        with pytest.raises(ConfigurationError):
            EarlyStopping(patience=0)

    def test_step_result_recorder(self, environment):
        recorder = StepResultRecorder()
        make_experiment(environment, attack="little", callbacks=[recorder]).run()
        results = recorder.results
        assert len(results) == NUM_STEPS
        assert results[0].step == 1
        assert results[0].byzantine_gradient is not None

    def test_vn_ratio_callback(self, environment):
        vn = VNRatioCallback()
        make_experiment(environment, callbacks=[vn]).run()
        trajectory = vn.trajectory
        assert len(trajectory.steps) == NUM_STEPS
        assert np.isfinite(trajectory.k_f)
        assert trajectory.median_ratio("clean") > 0

    def test_vn_ratio_callback_before_run_rejected(self):
        with pytest.raises(ConfigurationError, match="observed"):
            VNRatioCallback().trajectory

    def test_run_callbacks_argument(self, environment):
        recorder = RecordingCallback()
        make_experiment(environment, num_steps=2).run(callbacks=[recorder])
        assert ("train_start", 0) in recorder.events

    def test_accuracy_callback_skips_non_classifiers(self, environment):
        from repro.models.linear import LinearRegressionModel

        _, train_set, test_set = environment
        model = LinearRegressionModel(10)
        result = Experiment(
            model=model, train_dataset=train_set, test_dataset=test_set,
            num_steps=3, n=3, f=0, gar="average", batch_size=5,
            learning_rate=0.01, momentum=0.0, g_max=None, seed=1,
        ).run()
        assert len(result.history.accuracies) == 0

    def test_callback_list_composes(self):
        a, b = RecordingCallback(), RecordingCallback()
        composed = CallbackList([a, b])
        assert len(composed) == 2
        assert list(composed) == [a, b]


class FakeWorker:
    """Duck-typed worker that never samples a batch (all-Byzantine edge)."""

    def __init__(self):
        self.last_batch = None


class FakeCluster:
    """Duck-typed cluster: only what TrainingLoop touches."""

    def __init__(self, workers, dimension=3):
        self.honest_workers = workers
        self.step_count = 0
        self._dimension = dimension

    @property
    def parameters(self):
        return np.zeros(self._dimension)

    def step(self, record=True):
        self.step_count += 1
        from repro.distributed.cluster import StepResult

        zero = np.zeros((1, self._dimension))
        return StepResult(
            step=self.step_count, aggregated=zero[0],
            honest_submitted=zero if record else None,
            honest_clean=zero if record else None,
        )


class TestLossGuard:
    def test_no_honest_batches_records_nothing(self, environment):
        """Empty per-step loss lists are skipped, not averaged into NaN."""
        import warnings

        model, _, _ = environment
        loop = TrainingLoop(cluster=FakeCluster([FakeWorker()]), model=model)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # np.mean([]) would raise here
            state = loop.run(num_steps=3)
        assert len(state.history) == 0
        assert state.step == 3

    def test_loop_validates_num_steps(self, environment):
        model, _, _ = environment
        loop = TrainingLoop(cluster=FakeCluster([FakeWorker()]), model=model)
        with pytest.raises(ConfigurationError, match="num_steps"):
            loop.run(num_steps=0)
