"""Unit tests for the content-addressed result store (repro.campaign.store)."""

import dataclasses
import json

import pytest

from repro.campaign.store import STORE_SCHEMA, ResultStore, cell_key
from repro.exceptions import ConfigurationError
from repro.experiments.config import ExperimentConfig


def config(**overrides):
    payload = {
        "name": "cell",
        "num_steps": 10,
        "n": 5,
        "f": 2,
        "gar": "mda",
        "batch_size": 8,
        "seeds": (1, 2),
    }
    payload.update(overrides)
    return ExperimentConfig(**payload)


class TestCellKey:
    def test_deterministic(self):
        assert cell_key(config(), 1) == cell_key(config(), 1)

    def test_name_and_seed_list_are_presentation_only(self):
        assert cell_key(config(name="a"), 1) == cell_key(config(name="b"), 1)
        assert cell_key(config(seeds=(1,)), 1) == cell_key(config(seeds=(1, 2, 3)), 1)

    def test_seed_mode_environment_are_identity(self):
        base = cell_key(config(), 1)
        assert cell_key(config(), 2) != base
        assert cell_key(config(), 1, mode="simulate") != base
        assert cell_key(config(), 1, data_seed=1) != base
        assert cell_key(config(), 1, model_spec={"name": "linear"}) != base

    @pytest.mark.parametrize(
        "change",
        [
            {"num_steps": 11},
            {"batch_size": 9},
            {"gar": "median"},
            {"attack": "little"},
            {"epsilon": 0.2},
            {"learning_rate": 1.5},
            {"momentum": 0.5},
            {"policy": "semi-sync"},
            {"participation_rate": 0.5},
            {"drop_probability": 0.1},
        ],
    )
    def test_any_field_change_misses(self, change):
        assert cell_key(config(**change), 1) != cell_key(config(), 1)

    def test_kwargs_order_insensitive(self):
        first = config(attack="little", attack_kwargs=(("z", 1.5), ("factor", 2.0)))
        second = config(attack="little", attack_kwargs=(("factor", 2.0), ("z", 1.5)))
        assert cell_key(first, 1) == cell_key(second, 1)

    def test_int_float_distinction(self):
        # JSON canonical form distinguishes 2 from 2.0: a changed config
        # representation misses rather than silently aliasing.
        assert cell_key(config(g_max=1), 1) != cell_key(config(g_max=1.0), 1)


class TestResultStore:
    def test_round_trips_records_exactly(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        record = {
            "final_loss": 0.1 + 0.2,  # not exactly representable: repr round-trip
            "values": [1e-323, 3.141592653589793, -0.0],
            "nested": {"accuracy": None},
        }
        key = cell_key(config(), 1)
        store.save(key, record)
        assert store.load(key) == record
        assert store.load(key)["final_loss"] == 0.30000000000000004

    def test_has_and_contains(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = cell_key(config(), 1)
        assert not store.has(key)
        assert key not in store
        store.save(key, {"ok": True})
        assert store.has(key)
        assert key in store

    def test_missing_key_raises(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with pytest.raises(KeyError):
            store.load(cell_key(config(), 1))

    def test_mutated_config_never_hits(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.save(cell_key(config(), 1), {"ok": True})
        for change in ({"num_steps": 11}, {"epsilon": 0.3}, {"gar": "krum"}):
            assert not store.has(cell_key(config(**change), 1))

    def test_keys_sorted_and_len(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        keys = [cell_key(config(), seed) for seed in (1, 2, 3)]
        for key in keys:
            store.save(key, {"seed": key})
        assert store.keys() == sorted(keys)
        assert len(store) == 3

    def test_no_temp_files_left(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.save(cell_key(config(), 1), {"ok": True})
        leftovers = [
            path for path in (tmp_path / "store").rglob("*") if ".tmp." in path.name
        ]
        assert leftovers == []

    def test_reopen_existing_store(self, tmp_path):
        root = tmp_path / "store"
        key = cell_key(config(), 1)
        ResultStore(root).save(key, {"ok": True})
        assert ResultStore(root).has(key)

    def test_schema_mismatch_rejected(self, tmp_path):
        root = tmp_path / "store"
        ResultStore(root).save(cell_key(config(), 1), {"ok": True})
        (root / "meta.json").write_text(json.dumps({"schema": "other/9"}))
        with pytest.raises(ConfigurationError, match="schema"):
            ResultStore(root)

    def test_corrupt_meta_rejected(self, tmp_path):
        root = tmp_path / "store"
        ResultStore(root).save(cell_key(config(), 1), {"ok": True})
        (root / "meta.json").write_text("{broken")
        with pytest.raises(ConfigurationError, match="corrupt"):
            ResultStore(root)

    def test_read_only_use_creates_nothing(self, tmp_path):
        root = tmp_path / "store"
        store = ResultStore(root)
        assert not store.has(cell_key(config(), 1))
        assert store.keys() == []
        assert len(store) == 0
        assert not root.exists()  # created on first write, not on open

    def test_first_write_creates_layout(self, tmp_path):
        root = tmp_path / "store"
        ResultStore(root).save(cell_key(config(), 1), {"ok": True})
        meta = json.loads((root / "meta.json").read_text())
        assert meta == {"schema": STORE_SCHEMA}

    def test_malformed_key_rejected(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with pytest.raises(ConfigurationError, match="malformed"):
            store.path_for("ab")

    def test_key_covers_every_config_field(self):
        """A new ExperimentConfig field must be visibly in or out of the key.

        The canonical payload drops exactly ``name``, ``seeds`` and the
        execution-backend fields (bit-identical backends share a cell);
        if a field is ever added to the config, this test forces a
        decision (and a STORE_SCHEMA bump if it joins the identity).
        """
        from repro.campaign.store import _canonical_config_payload

        payload = _canonical_config_payload(config())
        field_names = {field.name for field in dataclasses.fields(ExperimentConfig)}
        excluded = {
            "name", "seeds", "backend", "num_shards", "round_timeout",
            # Checkpointing is run infrastructure: always out of the key.
            "checkpoint", "checkpoint_every",
            # The fault plan is numerically meaningful but enters the
            # key only when set, so pre-fault-plane keys stay stable.
            "faults", "faults_kwargs",
        }
        assert set(payload) == field_names - excluded
        assert STORE_SCHEMA == "repro.campaign-store/1"

    def test_faults_enter_the_key_only_when_set(self):
        from repro.campaign.store import _canonical_config_payload

        faulty = config().with_updates(
            faults="random", faults_kwargs=(("crash_rate", 0.1),)
        )
        payload = _canonical_config_payload(faulty)
        assert payload["faults"] == "random"
        assert payload["faults_kwargs"] == [["crash_rate", 0.1]]
        assert cell_key(faulty, 1) != cell_key(config(), 1)
        # Checkpointing never changes a key.
        checkpointed = config().with_updates(
            checkpoint="state.json", checkpoint_every=5
        )
        assert cell_key(checkpointed, 1) == cell_key(config(), 1)
