"""Tests specific to Krum / Multi-Krum."""

import numpy as np
import pytest

from repro.exceptions import AggregationError
from repro.gars.krum import KrumGAR, krum_scores
from tests.helpers import random_gradient_matrix


def brute_force_scores(gradients, f):
    """Direct O(n^2) re-implementation for cross-checking."""
    n = gradients.shape[0]
    neighbours = n - f - 2
    scores = []
    for i in range(n):
        distances = sorted(
            float(np.sum((gradients[i] - gradients[j]) ** 2))
            for j in range(n)
            if j != i
        )
        scores.append(sum(distances[:neighbours]))
    return np.array(scores)


class TestKrumScores:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_brute_force(self, seed):
        gradients = random_gradient_matrix(9, 5, seed=seed)
        assert np.allclose(krum_scores(gradients, 2), brute_force_scores(gradients, 2))

    def test_outlier_gets_worst_score(self):
        gradients = random_gradient_matrix(9, 5, seed=3, scale=0.1)
        gradients[4] += 100.0
        scores = krum_scores(gradients, 2)
        assert int(np.argmax(scores)) == 4

    def test_too_few_neighbours_rejected(self):
        with pytest.raises(AggregationError):
            krum_scores(random_gradient_matrix(5, 3, seed=0), 3)


class TestKrum:
    def test_precondition(self):
        # Krum needs n > 2f + 2.
        assert KrumGAR.supports(11, 4)
        assert not KrumGAR.supports(11, 5)
        with pytest.raises(AggregationError, match="2 f"):
            KrumGAR(11, 5)

    def test_paper_setup_invalid_for_krum(self):
        """The paper's n=11, f=5 rules Krum out — one reason MDA is the
        experimental GAR."""
        assert not KrumGAR.supports(11, 5)

    def test_returns_one_of_the_inputs(self):
        gar = KrumGAR(9, 2)
        gradients = random_gradient_matrix(9, 6, seed=0)
        output = gar.aggregate(gradients)
        assert any(np.array_equal(output, row) for row in gradients)

    def test_ignores_far_outliers(self):
        gar = KrumGAR(9, 2)
        gradients = random_gradient_matrix(9, 6, seed=1, scale=0.1)
        gradients[0] += 1000.0
        gradients[1] -= 1000.0
        output = gar.aggregate(gradients)
        assert np.linalg.norm(output) < 10.0

    def test_selects_cluster_member(self):
        """With 7 near-identical gradients and 2 outliers, Krum's pick is
        in the cluster."""
        rng = np.random.default_rng(2)
        cluster = 0.01 * rng.standard_normal((7, 4)) + 1.0
        outliers = 50.0 + rng.standard_normal((2, 4))
        gradients = np.vstack([cluster, outliers])
        output = KrumGAR(9, 2).aggregate(gradients)
        assert np.allclose(output, 1.0, atol=0.1)


class TestMultiKrum:
    def test_m1_equals_krum(self):
        gradients = random_gradient_matrix(9, 5, seed=4)
        assert np.array_equal(
            KrumGAR(9, 2, m=1).aggregate(gradients),
            KrumGAR(9, 2).aggregate(gradients),
        )

    def test_m_full_honest_averages_best(self):
        gar = KrumGAR(9, 2, m=7)
        gradients = random_gradient_matrix(9, 5, seed=5)
        scores = krum_scores(gradients, 2)
        chosen = np.argsort(scores, kind="stable")[:7]
        assert np.allclose(gar.aggregate(gradients), gradients[chosen].mean(axis=0))

    def test_m_validation(self):
        with pytest.raises(AggregationError, match="m"):
            KrumGAR(9, 2, m=0)
        with pytest.raises(AggregationError, match="m"):
            KrumGAR(9, 2, m=8)  # m > n - f

    def test_m_property(self):
        assert KrumGAR(9, 2, m=3).m == 3

    def test_multikrum_smooths_more_than_krum(self):
        """Averaging m selections reduces variance vs a single pick."""
        rng = np.random.default_rng(6)
        krum_outputs, multi_outputs = [], []
        for _ in range(50):
            gradients = rng.standard_normal((9, 4))
            krum_outputs.append(KrumGAR(9, 2).aggregate(gradients))
            multi_outputs.append(KrumGAR(9, 2, m=7).aggregate(gradients))
        krum_var = np.var(np.stack(krum_outputs), axis=0).sum()
        multi_var = np.var(np.stack(multi_outputs), axis=0).sum()
        assert multi_var < krum_var
