"""Tests for the Table 1 / Propositions 1-3 feasibility conditions."""

import math

import pytest

from repro.core import feasibility
from repro.exceptions import ResilienceError
from repro.gars import get_gar

# The paper's experimental budget.
EPS, DELTA = 0.2, 1e-6


class TestPrivacyConstant:
    def test_formula(self):
        expected = EPS / math.sqrt(math.log(1.25 / DELTA))
        assert feasibility.privacy_constant(EPS, DELTA) == pytest.approx(expected)

    def test_small_for_valid_budgets(self):
        """C << 1 in the (0,1)^2 budget range — why the conditions bite."""
        for eps in (0.1, 0.5, 0.9):
            for delta in (1e-9, 1e-6, 1e-3):
                assert feasibility.privacy_constant(eps, delta) < 1.0

    @pytest.mark.parametrize("eps", [0.0, 1.0, 2.0])
    def test_epsilon_range_enforced(self, eps):
        with pytest.raises(ResilienceError):
            feasibility.privacy_constant(eps, DELTA)


class TestMasterCondition:
    def test_exact_threshold(self):
        # can hold  <=>  k_f >= sqrt(8 d) / (C b)
        d, b = 69, 50
        threshold = math.sqrt(8 * d) / (feasibility.privacy_constant(EPS, DELTA) * b)
        assert feasibility.master_condition_can_hold(threshold * 1.01, d, b, EPS, DELTA)
        assert not feasibility.master_condition_can_hold(threshold * 0.99, d, b, EPS, DELTA)

    def test_infinite_k_always_feasible(self):
        assert feasibility.master_condition_can_hold(math.inf, 10**9, 1, EPS, DELTA)

    def test_paper_configuration_infeasible_for_mda(self):
        """Section 5's point: at d = 69, b = 50, eps = 0.2 even MDA
        cannot satisfy the noisy VN condition."""
        gar = get_gar("mda", 11, 5)
        assert not feasibility.master_condition_can_hold(gar.k_f(), 69, 50, EPS, DELTA)

    def test_large_batch_restores_feasibility(self):
        gar = get_gar("mda", 11, 5)
        b = feasibility.min_batch_size_for_gar(gar, 69, EPS, DELTA)
        assert feasibility.master_condition_can_hold(gar.k_f(), 69, math.ceil(b), EPS, DELTA)
        assert not feasibility.master_condition_can_hold(
            gar.k_f(), 69, math.floor(b * 0.9), EPS, DELTA
        )


class TestMinBatchAndMaxDimension:
    def test_min_batch_scales_with_sqrt_d(self):
        gar = get_gar("mda", 11, 5)
        b_small = feasibility.min_batch_size_for_gar(gar, 100, EPS, DELTA)
        b_large = feasibility.min_batch_size_for_gar(gar, 10_000, EPS, DELTA)
        assert b_large == pytest.approx(10 * b_small)

    def test_max_dimension_inverse(self):
        gar = get_gar("mda", 11, 5)
        d_max = feasibility.max_dimension_for_gar(gar, 2000, EPS, DELTA)
        # At that dimension, b=2000 is (just) feasible.
        assert feasibility.master_condition_can_hold(
            gar.k_f(), math.floor(d_max), 2000, EPS, DELTA
        )
        assert not feasibility.master_condition_can_hold(
            gar.k_f(), math.ceil(d_max * 1.1), 2000, EPS, DELTA
        )

    def test_oracle_unconstrained(self):
        gar = get_gar("oracle", 11, 5)
        assert feasibility.min_batch_size_for_gar(gar, 10**8, EPS, DELTA) == 1.0
        assert feasibility.max_dimension_for_gar(gar, 1, EPS, DELTA) == math.inf


class TestProposition1MDA:
    def test_closed_form(self):
        d, b = 69, 50
        constant = feasibility.privacy_constant(EPS, DELTA)
        expected = constant * b / (8 * math.sqrt(d) + constant * b)
        assert feasibility.mda_max_byzantine_fraction(d, b, EPS, DELTA) == pytest.approx(
            expected
        )

    def test_consistent_with_master_inequality(self):
        """tau <= closed-form bound  <=>  master inequality holds for
        MDA's k_F (up to the integer granularity of f)."""
        d, b, n = 400, 64, 101
        tau_max = feasibility.mda_max_byzantine_fraction(d, b, EPS, DELTA)
        from repro.gars.constants import k_mda

        for f in range(1, n // 2):
            tau = f / n
            can_hold = feasibility.master_condition_can_hold(
                k_mda(n, f), d, b, EPS, DELTA
            )
            assert can_hold == (tau <= tau_max + 1e-12), f"disagreement at f={f}"

    def test_decreases_with_dimension(self):
        values = [
            feasibility.mda_max_byzantine_fraction(d, 50, EPS, DELTA)
            for d in (10, 100, 1000, 10_000)
        ]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_resnet50_example(self):
        """Section 3: at ResNet-50 scale the tolerable fraction is tiny."""
        tau = feasibility.mda_max_byzantine_fraction(25_600_000, 128, EPS, DELTA)
        assert tau < 0.001


class TestProposition2DistanceBased:
    def test_krum_formula(self):
        d, n, f = 69, 11, 4
        constant = feasibility.privacy_constant(EPS, DELTA)
        expected = math.sqrt(16 * d * (n + f**2)) / constant
        assert feasibility.krum_min_batch_size(d, n, f, EPS, DELTA) == pytest.approx(
            expected
        )

    def test_krum_proof_relaxation_is_looser(self):
        """The proof's bound (via eta > n + f^2) must not exceed the
        exact master-inequality bound."""
        d, n, f = 69, 11, 4
        gar = get_gar("krum", n, f)
        exact = feasibility.min_batch_size_for_gar(gar, d, EPS, DELTA)
        relaxed = feasibility.krum_min_batch_size(d, n, f, EPS, DELTA)
        assert relaxed <= exact

    def test_median_formula(self):
        d, n = 69, 11
        constant = feasibility.privacy_constant(EPS, DELTA)
        assert feasibility.median_min_batch_size(d, n, EPS, DELTA) == pytest.approx(
            math.sqrt(4 * d * (n + 1)) / constant
        )

    def test_meamed_is_sqrt10_of_median(self):
        d, n = 69, 11
        ratio = feasibility.meamed_min_batch_size(d, n, EPS, DELTA) / \
            feasibility.median_min_batch_size(d, n, EPS, DELTA)
        assert ratio == pytest.approx(math.sqrt(10))

    def test_bulyan_precondition_checked(self):
        with pytest.raises(Exception):
            feasibility.bulyan_min_batch_size(69, 11, 5, EPS, DELTA)

    def test_omega_sqrt_nd_scaling(self):
        """Table 1's headline: b grows like sqrt(n d) for Krum."""
        b_1 = feasibility.krum_min_batch_size(100, 11, 4, EPS, DELTA)
        b_4 = feasibility.krum_min_batch_size(400, 11, 4, EPS, DELTA)
        assert b_4 == pytest.approx(2 * b_1)


class TestProposition3:
    def test_trimmed_mean_formula(self):
        d, b = 69, 50
        squared = (feasibility.privacy_constant(EPS, DELTA) * b) ** 2
        assert feasibility.trimmed_mean_max_byzantine_fraction(
            d, b, EPS, DELTA
        ) == pytest.approx(squared / (16 * d + 2 * squared))

    def test_phocas_formula(self):
        d, b = 69, 50
        squared = (feasibility.privacy_constant(EPS, DELTA) * b) ** 2
        assert feasibility.phocas_max_byzantine_fraction(
            d, b, EPS, DELTA
        ) == pytest.approx(squared / (64 * d + 2 * squared))

    def test_phocas_stricter_than_trimmed_mean(self):
        assert feasibility.phocas_max_byzantine_fraction(
            69, 50, EPS, DELTA
        ) < feasibility.trimmed_mean_max_byzantine_fraction(69, 50, EPS, DELTA)

    def test_quadratic_in_b(self):
        """f/n in O(b^2 / (d + b^2)) — for small b the bound is ~b^2."""
        small = feasibility.trimmed_mean_max_byzantine_fraction(10_000, 10, EPS, DELTA)
        double = feasibility.trimmed_mean_max_byzantine_fraction(10_000, 20, EPS, DELTA)
        assert double == pytest.approx(4 * small, rel=0.01)


class TestSqrtDRule:
    def test_resnet50_batch_over_5000(self):
        """The paper's Section 3 illustration: d = 25.6e6 => b > 5000."""
        assert feasibility.sqrt_d_batch_rule(25_600_000) > 5000

    def test_small_model(self):
        assert feasibility.sqrt_d_batch_rule(69) == pytest.approx(math.sqrt(69))
