"""Tests for the ``python -m repro`` CLI."""

import json

import pytest

from repro.experiments.cli import build_parser, main, render_figure_text


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_defaults(self):
        arguments = build_parser().parse_args(["table1"])
        assert arguments.dimension == 69
        assert arguments.batch_size == 50
        assert arguments.epsilon == 0.2

    def test_figure_options(self):
        arguments = build_parser().parse_args(["figure3", "--steps", "100", "--seeds", "2"])
        assert arguments.command == "figure3"
        assert arguments.steps == 100
        assert arguments.seeds == 2

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure9"])


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "table1" in output and "figure2" in output

    def test_table1_prints(self, capsys):
        assert main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "mda" in output and "Table 1" in output

    def test_table1_writes_file(self, tmp_path, capsys):
        target = tmp_path / "t1.txt"
        assert main(["table1", "--output", str(target)]) == 0
        assert target.exists()
        assert "mda" in target.read_text()

    def test_table1_custom_dimension(self, capsys):
        assert main(["table1", "--dimension", "500"]) == 0
        assert "d=500" in capsys.readouterr().out

    def test_bench_smoke_writes_json(self, tmp_path, capsys):
        import json

        target = tmp_path / "BENCH_kernels.json"
        code = main(
            ["bench", "--smoke", "--repeats", "1", "--output", str(target)]
        )
        assert code == 0
        payload = json.loads(target.read_text())
        assert payload["schema"].startswith("repro.bench_kernels/")
        gars = {entry["gar"] for entry in payload["results"]}
        assert {"krum", "geometric-median", "mda"} <= gars
        for entry in payload["results"]:
            assert entry["reference_ns_per_op"] > 0
            assert entry["kernel_ns_per_op"] > 0
            assert entry["max_abs_diff"] < 1e-6
        assert "speedup" in capsys.readouterr().out

    def test_bench_parser_defaults(self):
        arguments = build_parser().parse_args(["bench"])
        assert arguments.smoke is False
        assert arguments.repeats == 3
        assert arguments.training is False
        assert arguments.output is None  # resolved per mode at dispatch
        assert arguments.check is None
        assert arguments.check_tolerance == pytest.approx(0.30)

    def test_bench_parser_training_flags(self):
        arguments = build_parser().parse_args(
            ["bench", "--training", "--smoke", "--check", "BENCH_training.json"]
        )
        assert arguments.training is True
        assert arguments.smoke is True
        assert str(arguments.check) == "BENCH_training.json"

    @pytest.mark.slow
    def test_figure_tiny_run(self, tmp_path, capsys):
        target = tmp_path / "fig.txt"
        code = main(
            ["figure3", "--steps", "10", "--seeds", "1", "--output", str(target)]
        )
        assert code == 0
        text = target.read_text()
        assert "figure3" in text
        assert "mda-little" in text


def diverging_grid():
    """A linear-regression cell with no clipping and an absurd LR: the
    parameters overflow to inf/NaN within ~12 steps."""
    return {
        "model": {"name": "linear"},
        "configs": [
            {
                "name": "diverge",
                "num_steps": 14,
                "n": 3,
                "f": 0,
                "gar": "average",
                "batch_size": 5,
                "learning_rate": 1e12,
                "g_max": None,
                "eval_every": 7,
                "seeds": [1],
            }
        ],
    }


class TestExitCodes:
    """Subcommands must exit nonzero on failed runs and invalid configs."""

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_run_diverged_exits_1(self, tmp_path, capsys):
        path = tmp_path / "diverge.json"
        path.write_text(json.dumps(diverging_grid()))
        assert main(["run", str(path)]) == 1
        errors = capsys.readouterr().err
        assert "non-finite losses" in errors
        assert "diverge" in errors

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_simulate_diverged_exits_1(self, tmp_path, capsys):
        path = tmp_path / "diverge.json"
        path.write_text(json.dumps(diverging_grid()))
        assert main(["simulate", str(path)]) == 1
        assert "non-finite losses" in capsys.readouterr().err

    def test_run_unknown_gar_exits_2(self, tmp_path, capsys):
        grid = diverging_grid()
        grid["configs"][0]["gar"] = "not-a-gar"
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(grid))
        assert main(["run", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_run_unknown_config_field_exits_2(self, tmp_path, capsys):
        grid = diverging_grid()
        grid["configs"][0]["learning_rte"] = 2.0
        del grid["configs"][0]["learning_rate"]
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(grid))
        assert main(["run", str(path)]) == 2
        assert "unknown config fields" in capsys.readouterr().err

    def test_simulate_unknown_policy_exits_2(self, tmp_path, capsys):
        grid = diverging_grid()
        grid["configs"][0]["policy"] = "not-a-policy"
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(grid))
        assert main(["simulate", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_run_unknown_model_spec_exits_2(self, tmp_path, capsys):
        grid = diverging_grid()
        grid["model"] = {"name": "not-a-model"}
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(grid))
        assert main(["run", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_run_duplicate_cell_names_exit_2(self, tmp_path, capsys):
        grid = diverging_grid()
        grid["configs"].append(dict(grid["configs"][0]))
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(grid))
        assert main(["run", str(path)]) == 2
        assert "duplicate" in capsys.readouterr().err

    def test_healthy_run_still_exits_0(self, tmp_path):
        grid = diverging_grid()
        grid["configs"][0].update(
            {"learning_rate": 1.0, "g_max": 0.01, "num_steps": 3}
        )
        path = tmp_path / "ok.json"
        path.write_text(json.dumps(grid))
        assert main(["run", str(path)]) == 0


class TestRenderFigureText:
    @pytest.mark.slow
    def test_contains_both_panels(self):
        from repro.experiments.figures import figure_configs
        from repro.experiments.runner import phishing_environment, run_grid

        model, train_set, test_set = phishing_environment()
        configs = figure_configs(batch_size=20, num_steps=5, seeds=(1,))
        outcomes = run_grid(configs, model, train_set, test_set)
        text = render_figure_text("figure2", outcomes)
        assert "without DP" in text
        assert "with DP" in text
        assert "avg-noattack" in text
