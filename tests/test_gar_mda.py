"""Tests specific to MDA (Minimum Diameter Averaging)."""

import math
from itertools import combinations

import numpy as np
import pytest

from repro.exceptions import AggregationError
from repro.gars.mda import MDAGAR
from tests.helpers import random_gradient_matrix


def brute_force_mda(gradients, f):
    """Reference implementation: scan all subsets, no pruning.

    Mirrors the library's tie-break contract: among subsets whose
    diameters tie (to float equality), the lexicographically smallest
    averaged vector wins.
    """
    n = gradients.shape[0]
    squared_norms = np.sum(gradients**2, axis=1)
    squared = (
        squared_norms[:, None] + squared_norms[None, :] - 2.0 * (gradients @ gradients.T)
    )
    distances = np.sqrt(np.maximum(squared, 0.0))
    best_diameter, best_mean = math.inf, None
    for subset in combinations(range(n), n - f):
        diameter = max(
            (float(distances[i, j]) for i, j in combinations(subset, 2)),
            default=0.0,
        )
        if diameter > best_diameter:
            continue
        mean = gradients[list(subset)].mean(axis=0)
        if diameter < best_diameter or tuple(mean) < tuple(best_mean):
            best_diameter, best_mean = diameter, mean
    return best_mean


class TestMDA:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_brute_force(self, seed):
        gradients = random_gradient_matrix(9, 4, seed=seed)
        gar = MDAGAR(9, 3)
        assert np.allclose(gar.aggregate(gradients), brute_force_mda(gradients, 3))

    def test_paper_setup_supported(self):
        """n=11, f=5 — the experiments' configuration — is valid for MDA."""
        assert MDAGAR.supports(11, 5)
        gar = MDAGAR(11, 5)
        gradients = random_gradient_matrix(11, 69, seed=0)
        assert gar.aggregate(gradients).shape == (69,)

    def test_majority_precondition(self):
        assert not MDAGAR.supports(10, 5)  # 2f > n - 1
        with pytest.raises(AggregationError, match="majority"):
            MDAGAR(10, 5)

    def test_f_zero_is_mean(self):
        gradients = random_gradient_matrix(6, 4, seed=4)
        gar = MDAGAR(6, 0)
        assert np.allclose(gar.aggregate(gradients), gradients.mean(axis=0))

    def test_excludes_far_outliers(self):
        rng = np.random.default_rng(5)
        cluster = 0.01 * rng.standard_normal((6, 4))
        outliers = 100.0 + rng.standard_normal((5, 4))
        gradients = np.vstack([cluster, outliers])
        output = MDAGAR(11, 5).aggregate(gradients)
        # The minimum-diameter 6-subset is the tight cluster.
        assert np.allclose(output, cluster.mean(axis=0))

    def test_identical_byzantine_block_can_capture(self):
        """The ALIE geometry: f identical vectors near the cluster edge
        form a tiny-diameter subset — documenting the known failure
        mode the paper's Fig. 2 (DP column) exhibits."""
        rng = np.random.default_rng(6)
        honest = rng.standard_normal((6, 4))  # wide spread
        byzantine = np.tile(honest.mean(axis=0) - 1.5 * honest.std(axis=0), (5, 1))
        gradients = np.vstack([honest, byzantine])
        output = MDAGAR(11, 5).aggregate(gradients)
        # Output is pulled toward the Byzantine point: closer to it than
        # to the honest mean.
        to_byzantine = np.linalg.norm(output - byzantine[0])
        to_honest = np.linalg.norm(output - honest.mean(axis=0))
        assert to_byzantine < to_honest

    def test_k_f_formula(self):
        gar = MDAGAR(11, 5)
        assert gar.k_f() == pytest.approx((11 - 5) / (math.sqrt(8) * 5))

    def test_k_f_infinite_without_byzantine(self):
        assert MDAGAR(6, 0).k_f() == math.inf

    def test_subset_explosion_guarded(self):
        # n=40, f=19 satisfies the majority precondition but C(40, 21)
        # is ~1.3e11 subsets — far past the exhaustive-search limit.
        with pytest.raises(AggregationError, match="infeasible"):
            MDAGAR(40, 19)

    def test_diameter_zero_subset_wins(self):
        """A subset of identical vectors (diameter 0) always wins."""
        gradients = np.vstack(
            [np.tile(np.array([5.0, 5.0]), (4, 1)), random_gradient_matrix(3, 2, seed=7)]
        )
        output = MDAGAR(7, 3).aggregate(gradients)
        assert np.allclose(output, [5.0, 5.0])
