"""Tests for (alpha, f)-resilience certification."""

import math

import numpy as np
import pytest

from repro.core.resilience import (
    angle_condition_holds,
    certify_vn_condition,
    estimate_alpha,
)
from repro.exceptions import ResilienceError
from repro.gars import get_gar


class TestCertifyVNCondition:
    def test_clean_satisfied(self):
        gar = get_gar("mda", 11, 5)  # k_F ~ 0.424
        certificate = certify_vn_condition(gar, variance=1e-6, mean_norm=0.01)
        assert certificate.satisfied
        assert not certificate.dp_enabled
        assert certificate.margin > 0

    def test_clean_violated(self):
        gar = get_gar("mda", 11, 5)
        certificate = certify_vn_condition(gar, variance=1.0, mean_norm=0.01)
        assert not certificate.satisfied
        assert certificate.margin < 0

    def test_dp_flips_verdict(self):
        """The paper's core point at one configuration: a distribution
        that satisfies the VN condition without DP fails it once the
        b=50, eps=0.2 noise is added."""
        gar = get_gar("mda", 11, 5)
        clean = certify_vn_condition(gar, variance=1e-6, mean_norm=0.01)
        noisy = certify_vn_condition(
            gar,
            variance=1e-6,
            mean_norm=0.01,
            dimension=69,
            g_max=1e-2,
            batch_size=50,
            epsilon=0.2,
            delta=1e-6,
        )
        assert clean.satisfied
        assert not noisy.satisfied
        assert noisy.dp_enabled

    def test_large_batch_restores_condition(self):
        """Fig. 4's regime: b = 5000 makes the noisy condition hold again."""
        gar = get_gar("mda", 11, 5)
        noisy = certify_vn_condition(
            gar,
            variance=1e-8,
            mean_norm=0.01,
            dimension=69,
            g_max=1e-2,
            batch_size=5000,
            epsilon=0.2,
            delta=1e-6,
        )
        assert noisy.satisfied

    def test_partial_dp_arguments_rejected(self):
        gar = get_gar("mda", 11, 5)
        with pytest.raises(ResilienceError, match="all of"):
            certify_vn_condition(gar, 1e-6, 0.01, dimension=69)

    def test_str_rendering(self):
        gar = get_gar("mda", 11, 5)
        text = str(certify_vn_condition(gar, 1e-6, 0.01))
        assert "SATISFIED" in text and "k_F" in text


class TestEstimateAlpha:
    def test_aligned_output_gives_zero(self):
        gradient = np.array([1.0, 0.0])
        assert estimate_alpha(gradient, gradient) == pytest.approx(0.0)

    def test_known_angle(self):
        gradient = np.array([1.0, 0.0])
        # Output with projection 0.5 onto gradient: sin(alpha) = 0.5.
        output = np.array([0.5, 1.0])
        assert estimate_alpha(output, gradient) == pytest.approx(math.asin(0.5))

    def test_longer_aligned_output_still_zero(self):
        gradient = np.array([1.0, 0.0])
        output = np.array([2.0, 0.0])  # projection 2 > 1: sine clamped at 0
        assert estimate_alpha(output, gradient) == 0.0

    def test_orthogonal_output_rejected(self):
        gradient = np.array([1.0, 0.0])
        output = np.array([0.0, 1.0])
        with pytest.raises(ResilienceError, match="no alpha"):
            estimate_alpha(output, gradient)

    def test_zero_gradient_rejected(self):
        with pytest.raises(ResilienceError, match="zero"):
            estimate_alpha(np.ones(2), np.zeros(2))


class TestAngleCondition:
    def test_holds_for_aligned(self):
        gradient = np.array([2.0, 0.0])
        assert angle_condition_holds(gradient, gradient, alpha=0.1)

    def test_fails_for_opposed(self):
        gradient = np.array([1.0, 0.0])
        assert not angle_condition_holds(-gradient, gradient, alpha=1.0)

    def test_threshold_behaviour(self):
        gradient = np.array([1.0, 0.0])
        output = np.array([0.6, 0.0])  # inner product 0.6 = (1 - sin a)
        assert angle_condition_holds(output, gradient, alpha=math.asin(0.4) + 0.01)
        assert not angle_condition_holds(output, gradient, alpha=math.asin(0.4) - 0.01)

    def test_alpha_validated(self):
        with pytest.raises(ResilienceError):
            angle_condition_holds(np.ones(2), np.ones(2), alpha=math.pi / 2)

    def test_strictly_positive_inner_product_required(self):
        gradient = np.array([1.0, 0.0])
        # alpha = asin(1) excluded by range check; use just below pi/2 so
        # (1 - sin a) ~ 0 but inner product must still be > 0.
        assert not angle_condition_holds(
            np.array([0.0, 5.0]), gradient, alpha=math.pi / 2 - 1e-9
        )


class TestEndToEndWithGARs:
    """Monte-Carlo estimate of E[R_t] for concrete GARs under attack:
    the robust rules should keep the angle condition at moderate noise."""

    def run_gar(self, name, n, f, attack_shift, trials=300, spread=0.1):
        rng = np.random.default_rng(0)
        gar = get_gar(name, n, f)
        true_gradient = np.array([1.0, 0.5, -0.5])
        outputs = []
        for _ in range(trials):
            honest = true_gradient + spread * rng.standard_normal((n - f, 3))
            byzantine = np.tile(true_gradient + attack_shift, (f, 1))
            outputs.append(gar.aggregate(np.vstack([honest, byzantine])))
        return np.mean(outputs, axis=0), true_gradient

    @pytest.mark.parametrize("name", ["median", "mda", "trimmed-mean", "meamed", "phocas"])
    def test_robust_gars_pass_angle_condition_under_attack(self, name):
        expected, gradient = self.run_gar(name, 11, 5, attack_shift=np.array([5.0, 5.0, 5.0]))
        assert angle_condition_holds(expected, gradient, alpha=math.pi / 4)

    def test_average_fails_angle_condition_under_attack(self):
        from repro.gars.average import AverageGAR

        rng = np.random.default_rng(1)
        gar = AverageGAR(11, 5, allow_byzantine=True)
        true_gradient = np.array([1.0, 0.5, -0.5])
        outputs = []
        for _ in range(200):
            honest = true_gradient + 0.1 * rng.standard_normal((6, 3))
            byzantine = np.tile(-10.0 * true_gradient, (5, 1))
            outputs.append(gar.aggregate(np.vstack([honest, byzantine])))
        expected = np.mean(outputs, axis=0)
        assert not angle_condition_holds(expected, true_gradient, alpha=math.pi / 4)
