"""Contract tests on the public API surface.

Every ``__all__`` entry must resolve, every public module and callable
must carry a docstring, and the registries must stay consistent with
their classes — the basics a downstream user relies on.
"""

import importlib
import inspect

import pytest

import repro

PUBLIC_MODULES = [
    "repro",
    "repro.analysis",
    "repro.attacks",
    "repro.core",
    "repro.core.convergence",
    "repro.core.feasibility",
    "repro.core.resilience",
    "repro.core.tradeoff",
    "repro.core.vn_ratio",
    "repro.data",
    "repro.distributed",
    "repro.exceptions",
    "repro.experiments",
    "repro.experiments.cli",
    "repro.gars",
    "repro.metrics",
    "repro.models",
    "repro.optim",
    "repro.privacy",
    "repro.rng",
    "repro.telemetry",
    "repro.typing",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_importable_with_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_all_entries_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name!r}"


def _public_callables(module):
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_public_callables_documented(module_name):
    module = importlib.import_module(module_name)
    for name, obj in _public_callables(module):
        assert obj.__doc__, f"{module_name}.{name} lacks a docstring"


def test_version_string():
    assert repro.__version__.count(".") == 2


def test_registries_cover_advertised_names():
    assert set(repro.available_gars()) >= {
        "average", "median", "trimmed-mean", "krum", "mda",
        "bulyan", "meamed", "phocas", "oracle",
    }
    assert set(repro.available_attacks()) >= {
        "little", "empire", "signflip", "random", "zero", "large-norm", "mimic",
    }


def test_gar_classes_have_public_methods_documented():
    from repro.gars import GAR_REGISTRY

    for cls in GAR_REGISTRY.values():
        assert cls.__doc__
        assert cls.aggregate.__doc__ or cls.__base__.aggregate.__doc__

    # Every registered class declares its own k_f with a docstring.
    for cls in GAR_REGISTRY.values():
        assert cls.k_f.__doc__, f"{cls.name}.k_f lacks a docstring"


def test_exceptions_exported_at_top_level():
    for name in (
        "ReproError", "ConfigurationError", "PrivacyError",
        "AggregationError", "ResilienceError", "DataError", "TrainingError",
    ):
        assert hasattr(repro, name)
