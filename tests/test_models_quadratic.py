"""Tests for the mean-estimation model (Theorem 1's landscape)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.models.quadratic import MeanEstimationModel
from tests.helpers import numerical_gradient


@pytest.fixture
def cloud():
    rng = np.random.default_rng(0)
    return rng.standard_normal((40, 5)) + np.array([1.0, -1.0, 0.5, 0.0, 2.0])


class TestMeanEstimation:
    def test_dimension(self):
        assert MeanEstimationModel(7).dimension == 7

    def test_invalid_dimension(self):
        with pytest.raises(ConfigurationError):
            MeanEstimationModel(0)

    def test_gradient_matches_numerical(self, cloud):
        model = MeanEstimationModel(5)
        w = np.random.default_rng(1).standard_normal(5)
        numeric = numerical_gradient(lambda p: model.loss(p, cloud, None), w)
        assert np.allclose(model.gradient(w, cloud, None), numeric, atol=1e-5)

    def test_gradient_closed_form(self, cloud):
        """grad Q(w) = w - mean(x) exactly."""
        model = MeanEstimationModel(5)
        w = np.arange(5, dtype=float)
        expected = w - cloud.mean(axis=0)
        assert np.allclose(model.gradient(w, cloud, None), expected)

    def test_per_example_gradients(self, cloud):
        model = MeanEstimationModel(5)
        w = np.ones(5)
        per_example = model.per_example_gradients(w, cloud, None)
        assert np.allclose(per_example, w[None, :] - cloud)

    def test_optimum_is_mean(self, cloud):
        model = MeanEstimationModel(5)
        assert np.allclose(model.optimum(cloud), cloud.mean(axis=0))

    def test_zero_gradient_at_optimum(self, cloud):
        model = MeanEstimationModel(5)
        gradient = model.gradient(model.optimum(cloud), cloud, None)
        assert np.linalg.norm(gradient) < 1e-12

    def test_loss_decomposition(self, cloud):
        """Q(w) = 1/2 ||w - x_bar||^2 + Q* (the paper's identity)."""
        model = MeanEstimationModel(5)
        optimum = model.optimum(cloud)
        optimal_loss = model.optimal_loss(cloud)
        w = np.random.default_rng(2).standard_normal(5)
        expected = 0.5 * float(np.sum((w - optimum) ** 2)) + optimal_loss
        assert model.loss(w, cloud, None) == pytest.approx(expected)

    def test_strong_convexity_constant(self, cloud):
        """<w - w', grad(w) - grad(w')> = ||w - w'||^2 exactly (lambda = 1)."""
        model = MeanEstimationModel(5)
        rng = np.random.default_rng(3)
        w1, w2 = rng.standard_normal(5), rng.standard_normal(5)
        lhs = float(
            np.dot(w1 - w2, model.gradient(w1, cloud, None) - model.gradient(w2, cloud, None))
        )
        assert lhs == pytest.approx(float(np.sum((w1 - w2) ** 2)))

    def test_lipschitz_constant(self, cloud):
        """||grad(w) - grad(w')|| = ||w - w'|| exactly (mu = 1)."""
        model = MeanEstimationModel(5)
        rng = np.random.default_rng(4)
        w1, w2 = rng.standard_normal(5), rng.standard_normal(5)
        lhs = np.linalg.norm(
            model.gradient(w1, cloud, None) - model.gradient(w2, cloud, None)
        )
        assert lhs == pytest.approx(np.linalg.norm(w1 - w2))

    def test_labels_ignored(self, cloud):
        model = MeanEstimationModel(5)
        w = np.ones(5)
        assert model.loss(w, cloud, None) == model.loss(w, cloud, np.zeros(40))

    def test_feature_width_validated(self, cloud):
        model = MeanEstimationModel(4)
        with pytest.raises(ValueError):
            model.loss(np.zeros(4), cloud, None)

    def test_not_a_classifier(self, cloud):
        with pytest.raises(NotImplementedError):
            MeanEstimationModel(5).predict(np.zeros(5), cloud)
