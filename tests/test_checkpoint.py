"""Checkpoint/resume: atomic snapshots, bit-identical continuation.

The core claim (ISSUE acceptance (b)): a run that is killed after a
periodic checkpoint and then resumed is bit-for-bit identical to one
that never stopped — including DP noise streams, attack RNG, worker
momentum and accuracy evaluations.  Plus the failure surface: missing /
corrupt / wrong-schema snapshots, mismatched clusters, and the
``checkpoint.saved`` telemetry counter.
"""

import json

import pytest

from repro.data.phishing import make_phishing_dataset
from repro.exceptions import ConfigurationError, TrainingError
from repro.faults import load_checkpoint, save_checkpoint
from repro.models.logistic import LogisticRegressionModel
from repro.pipeline.builder import Experiment
from repro.pipeline.loop import TrainingLoop
from repro.telemetry import MemorySink, Telemetry


def settings(**overrides):
    """Fresh kwargs for one Experiment (models are stateful: never share)."""
    payload = dict(
        model=LogisticRegressionModel(6),
        train_dataset=make_phishing_dataset(seed=0, num_points=120, num_features=6),
        test_dataset=make_phishing_dataset(seed=1, num_points=40, num_features=6),
        num_steps=10,
        n=5,
        f=1,
        gar="median",
        attack="little",
        epsilon=0.5,
        momentum=0.9,
        batch_size=5,
        eval_every=5,
        seed=3,
    )
    payload.update(overrides)
    return payload


class TestKillResume:
    def test_resume_is_bit_identical_to_uninterrupted_run(self, tmp_path):
        ckpt = tmp_path / "state.json"
        # The "killed" run: stops at round 6, last snapshot at round 6.
        Experiment(**settings(num_steps=6), checkpoint=ckpt, checkpoint_every=2).run()
        resumed = Experiment(**settings(), checkpoint=ckpt, checkpoint_every=2).resume()
        reference = Experiment(**settings()).run()
        # DP noise, attack RNG, batch samplers and momentum all restore
        # exactly: the completed run never diverges from the unbroken one.
        assert (
            resumed.final_parameters.tolist()
            == reference.final_parameters.tolist()
        )
        assert (
            resumed.history.losses.tolist() == reference.history.losses.tolist()
        )
        assert (
            resumed.history.accuracies.tolist()
            == reference.history.accuracies.tolist()
        )

    def test_resume_from_mid_interval_kill_uses_last_snapshot(self, tmp_path):
        # Kill at round 5 with checkpoint_every=2: the snapshot on disk
        # is from round 4, and resume replays rounds 5-10 from there.
        ckpt = tmp_path / "state.json"
        Experiment(**settings(num_steps=5), checkpoint=ckpt, checkpoint_every=2).run()
        assert load_checkpoint(ckpt)["step"] == 4
        resumed = Experiment(**settings(), checkpoint=ckpt, checkpoint_every=2).resume()
        reference = Experiment(**settings()).run()
        assert (
            resumed.final_parameters.tolist()
            == reference.final_parameters.tolist()
        )
        assert (
            resumed.history.losses.tolist() == reference.history.losses.tolist()
        )

    def test_resume_past_complete_run_adds_nothing(self, tmp_path):
        ckpt = tmp_path / "state.json"
        finished = Experiment(
            **settings(num_steps=6), checkpoint=ckpt, checkpoint_every=2
        ).run()
        resumed = Experiment(
            **settings(num_steps=6), checkpoint=ckpt, checkpoint_every=2
        ).resume()
        assert (
            resumed.history.losses.tolist() == finished.history.losses.tolist()
        )
        assert (
            resumed.final_parameters.tolist()
            == finished.final_parameters.tolist()
        )

    def test_resume_does_not_double_record_step_zero_accuracy(self, tmp_path):
        ckpt = tmp_path / "state.json"
        Experiment(**settings(num_steps=6), checkpoint=ckpt, checkpoint_every=2).run()
        resumed = Experiment(**settings(), checkpoint=ckpt, checkpoint_every=2).resume()
        reference = Experiment(**settings()).run()
        # eval_every=5 over 10 rounds: step 0 (train start), 5 and 10.
        assert len(reference.history.accuracies) == 3
        assert len(resumed.history.accuracies) == 3


class TestCheckpointFiles:
    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        ckpt = tmp_path / "nested" / "state.json"
        Experiment(**settings(num_steps=4), checkpoint=ckpt, checkpoint_every=2).run()
        assert ckpt.exists()
        leftovers = [
            path for path in ckpt.parent.iterdir() if ".tmp." in path.name
        ]
        assert leftovers == []

    def test_snapshot_cadence_and_schema(self, tmp_path):
        ckpt = tmp_path / "state.json"
        Experiment(**settings(num_steps=5), checkpoint=ckpt, checkpoint_every=3).run()
        payload = load_checkpoint(ckpt)
        assert payload["step"] == 3  # rounds 3 only: 6 is past num_steps=5
        assert payload["schema"] == "repro.checkpoint/1"
        assert set(payload) >= {"step", "cluster", "history"}

    def test_missing_checkpoint_raises(self, tmp_path):
        with pytest.raises(TrainingError, match="no checkpoint"):
            load_checkpoint(tmp_path / "absent.json")

    def test_corrupt_checkpoint_raises(self, tmp_path):
        path = tmp_path / "state.json"
        path.write_text("{broken", encoding="utf-8")
        with pytest.raises(TrainingError, match="corrupt"):
            load_checkpoint(path)

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "state.json"
        path.write_text(json.dumps({"schema": "other/9"}), encoding="utf-8")
        with pytest.raises(TrainingError, match="schema"):
            load_checkpoint(path)

    def test_save_checkpoint_stamps_schema(self, tmp_path):
        path = tmp_path / "state.json"
        save_checkpoint(path, {"step": 0, "cluster": {}, "history": {}})
        assert load_checkpoint(path)["schema"] == "repro.checkpoint/1"


class TestValidation:
    def test_resume_requires_a_checkpoint_path(self):
        experiment = Experiment(**settings(num_steps=4))
        with pytest.raises(ConfigurationError, match="checkpoint"):
            experiment.resume()

    def test_loop_resume_requires_a_checkpoint_path(self):
        experiment = Experiment(**settings(num_steps=4))
        loop = TrainingLoop(
            cluster=experiment.build_cluster(), model=experiment.model
        )
        with pytest.raises(ConfigurationError, match="needs a checkpoint path"):
            loop.resume(4)

    def test_checkpoint_every_must_be_positive(self, tmp_path):
        with pytest.raises(ConfigurationError, match="checkpoint_every"):
            Experiment(
                **settings(), checkpoint=tmp_path / "s.json", checkpoint_every=0
            )

    def test_checkpoint_requires_inprocess_backend(self, tmp_path):
        with pytest.raises(ConfigurationError, match="inprocess"):
            Experiment(
                **settings(backend="multiprocess", num_shards=2),
                checkpoint=tmp_path / "s.json",
            )

    def test_mismatched_cluster_rejected_on_resume(self, tmp_path):
        ckpt = tmp_path / "state.json"
        Experiment(**settings(num_steps=4), checkpoint=ckpt, checkpoint_every=2).run()
        smaller = Experiment(
            **settings(n=3, f=0, attack=None), checkpoint=ckpt, checkpoint_every=2
        )
        with pytest.raises(ConfigurationError, match="workers"):
            smaller.resume()


class TestTelemetry:
    def test_checkpoint_saved_counter(self, tmp_path):
        sink = MemorySink()
        Experiment(
            **settings(num_steps=6),
            checkpoint=tmp_path / "state.json",
            checkpoint_every=2,
            telemetry=Telemetry(sinks=[sink]),
        ).run()
        saves = [
            event for event in sink.by_kind("counter")
            if event["name"] == "checkpoint.saved"
        ]
        assert [event["attrs"]["step"] for event in saves] == [2, 4, 6]
