"""Campaign report tests: store join, pivot grids, curves, purity."""

import pytest

from repro.campaign.matrix import ScenarioMatrix
from repro.campaign.report import cell_results, render_campaign_report
from repro.campaign.runner import run_campaign
from repro.campaign.store import ResultStore
from repro.exceptions import ConfigurationError

MATRIX = {
    "name": "report-test",
    "model": {"name": "logistic", "loss_kind": "mse"},
    "data_seed": 0,
    "base": {
        "num_steps": 2,
        "n": 3,
        "f": 1,
        "batch_size": 5,
        "eval_every": 1,
        "seeds": [1, 2],
    },
    "axes": {"gar": ["mda", "median"], "epsilon": [None, 0.5]},
    "report": {
        "rows": "gar",
        "cols": "epsilon",
        "metrics": ["final_accuracy", "epsilon", "vn_submitted"],
        "curves": True,
    },
}


@pytest.fixture(scope="module")
def matrix():
    return ScenarioMatrix.from_dict(MATRIX)


@pytest.fixture(scope="module")
def store(matrix, tmp_path_factory):
    store = ResultStore(tmp_path_factory.mktemp("report") / "store")
    run_campaign(matrix, store)
    return store


class TestCellResults:
    def test_joins_every_cell(self, matrix, store):
        results = cell_results(matrix, store)
        assert [cell.name for cell, _ in results] == [c.name for c in matrix.cells]
        assert all(len(records) == 2 for _, records in results)

    def test_partial_store_joins_partially(self, matrix, tmp_path):
        empty = ResultStore(tmp_path / "empty")
        results = cell_results(matrix, empty)
        assert all(records == [] for _, records in results)


class TestRenderReport:
    def test_sections_present(self, matrix, store):
        text = render_campaign_report(matrix, store)
        assert "=== campaign report-test ===" in text
        assert "runs: 8/8 completed" in text
        assert "final_accuracy grid" in text
        assert "epsilon grid" in text
        assert "vn_submitted grid" in text
        assert "gar x epsilon" in text
        assert "test accuracy (mean over completed seeds)" in text
        assert "pending" not in text

    def test_partial_report_lists_pending(self, matrix, tmp_path):
        text = render_campaign_report(matrix, ResultStore(tmp_path / "empty"))
        assert "runs: 0/8 completed" in text
        assert "pending" in text
        assert "-" in text  # missing metrics render as dashes

    def test_report_is_pure_function_of_store(self, matrix, store, tmp_path):
        """Same matrix + same records => same bytes, wherever the store lives."""
        copy = ResultStore(tmp_path / "copy")
        for key in store.keys():
            copy.save(key, store.load(key))
        assert render_campaign_report(matrix, copy) == render_campaign_report(
            matrix, store
        )

    def test_unknown_metric_rejected(self, matrix, store):
        document = dict(MATRIX, report={"rows": "gar", "cols": "epsilon",
                                        "metrics": ["bogus"]})
        bad = ScenarioMatrix.from_dict(document)
        with pytest.raises(ConfigurationError, match="metric"):
            render_campaign_report(bad, store)

    def test_no_report_spec_skips_pivots(self, store):
        document = dict(MATRIX)
        document.pop("report")
        plain = ScenarioMatrix.from_dict(document)
        text = render_campaign_report(plain, store)
        assert "grid" not in text
        assert "report-test" in text
