"""Shared pytest configuration.

Adds the ``--regen-golden`` flag used by :mod:`tests.test_golden_traces`
to re-record the committed golden fixtures after an intentional change
to the numerical pipeline (see README "Performance").
"""


def pytest_addoption(parser):
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help="re-record the golden-trace fixtures instead of asserting "
        "against them",
    )
