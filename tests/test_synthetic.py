"""Tests for generic synthetic dataset generators."""

import numpy as np
import pytest

from repro.data.synthetic import (
    make_gaussian_mean_dataset,
    make_linearly_separable_dataset,
    make_two_blobs_dataset,
)
from repro.exceptions import DataError


class TestGaussianMean:
    def test_shape(self):
        dataset = make_gaussian_mean_dataset(dimension=8, num_points=100, seed=0)
        assert dataset.features.shape == (100, 8)

    def test_total_variance_is_sigma_squared(self):
        """Per-coordinate variance sigma^2/d makes E||x - mean||^2 = sigma^2
        regardless of d — the key property of Theorem 1's construction."""
        for dimension in (2, 16, 64):
            dataset = make_gaussian_mean_dataset(
                dimension=dimension, num_points=20_000, sigma=1.5, seed=1
            )
            center = dataset.features.mean(axis=0)
            total_variance = np.mean(
                np.sum((dataset.features - center) ** 2, axis=1)
            )
            assert total_variance == pytest.approx(1.5**2, rel=0.05)

    def test_custom_mean_respected(self):
        mean = np.arange(4, dtype=float)
        dataset = make_gaussian_mean_dataset(
            dimension=4, num_points=50_000, sigma=0.5, mean=mean, seed=2
        )
        assert np.allclose(dataset.features.mean(axis=0), mean, atol=0.02)

    def test_mean_shape_validated(self):
        with pytest.raises(DataError, match="shape"):
            make_gaussian_mean_dataset(dimension=4, num_points=10, mean=np.zeros(3))

    def test_zero_sigma_collapses(self):
        dataset = make_gaussian_mean_dataset(dimension=3, num_points=10, sigma=0.0, seed=0)
        assert np.allclose(dataset.features, dataset.features[0])

    @pytest.mark.parametrize("kwargs", [
        {"dimension": 0, "num_points": 10},
        {"dimension": 3, "num_points": 0},
        {"dimension": 3, "num_points": 10, "sigma": -1.0},
    ])
    def test_invalid_arguments(self, kwargs):
        with pytest.raises(DataError):
            make_gaussian_mean_dataset(**kwargs)


class TestLinearlySeparable:
    def test_separable_with_margin(self):
        dataset = make_linearly_separable_dataset(
            num_points=500, num_features=6, margin=0.4, seed=0
        )
        # Some hyperplane classifies perfectly: recover it by re-deriving
        # labels from any perfect linear separator found via the data.
        # Instead of solving an LP, check the generator's invariant:
        # both classes are present and no point is ambiguous (margin).
        assert set(np.unique(dataset.labels)) == {0.0, 1.0}

    def test_margin_enforced(self):
        # Rebuild the generator's normal to verify the margin band is empty.
        from repro.rng import generator_from_seed

        rng = generator_from_seed(7)
        normal = rng.standard_normal(5)
        normal /= np.linalg.norm(normal)
        dataset = make_linearly_separable_dataset(
            num_points=300, num_features=5, margin=0.5, seed=7
        )
        distances = dataset.features @ normal
        assert np.all(np.abs(distances) >= 0.25 - 1e-9)
        assert np.array_equal(dataset.labels, (distances >= 0).astype(float))

    def test_invalid_margin(self):
        with pytest.raises(DataError):
            make_linearly_separable_dataset(10, 3, margin=-0.1)


class TestTwoBlobs:
    def test_shape_and_labels(self):
        dataset = make_two_blobs_dataset(num_points=200, num_features=4, seed=0)
        assert dataset.features.shape == (200, 4)
        assert set(np.unique(dataset.labels)) == {0.0, 1.0}

    def test_separation_moves_centers_apart(self):
        dataset = make_two_blobs_dataset(
            num_points=5000, num_features=3, separation=6.0, spread=0.5, seed=1
        )
        positive = dataset.features[dataset.labels == 1.0].mean(axis=0)
        negative = dataset.features[dataset.labels == 0.0].mean(axis=0)
        assert np.linalg.norm(positive - negative) == pytest.approx(6.0, rel=0.1)

    def test_invalid_spread(self):
        with pytest.raises(DataError):
            make_two_blobs_dataset(10, 2, spread=0.0)

    def test_needs_two_points(self):
        with pytest.raises(DataError):
            make_two_blobs_dataset(1, 2)
