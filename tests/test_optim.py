"""Tests for schedules and the SGD optimizer."""

import math

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, TrainingError
from repro.optim.schedules import (
    ConstantSchedule,
    InverseTimeSchedule,
    StepDecaySchedule,
    theorem1_schedule,
)
from repro.optim.sgd import SGDOptimizer


class TestConstantSchedule:
    def test_constant(self):
        schedule = ConstantSchedule(2.0)
        assert schedule.rate(1) == 2.0
        assert schedule.rate(1000) == 2.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            ConstantSchedule(0.0)

    def test_rejects_step_zero(self):
        with pytest.raises(ValueError):
            ConstantSchedule(1.0).rate(0)


class TestInverseTimeSchedule:
    def test_values(self):
        schedule = InverseTimeSchedule(3.0)
        assert schedule.rate(1) == 3.0
        assert schedule.rate(3) == 1.0
        assert schedule.rate(30) == pytest.approx(0.1)

    def test_strictly_decreasing(self):
        schedule = InverseTimeSchedule(1.0)
        rates = [schedule.rate(t) for t in range(1, 20)]
        assert all(a > b for a, b in zip(rates, rates[1:]))


class TestStepDecaySchedule:
    def test_decay_boundaries(self):
        schedule = StepDecaySchedule(1.0, factor=0.5, period=10)
        assert schedule.rate(1) == 1.0
        assert schedule.rate(10) == 1.0
        assert schedule.rate(11) == 0.5
        assert schedule.rate(21) == 0.25

    def test_factor_validation(self):
        with pytest.raises(ConfigurationError):
            StepDecaySchedule(1.0, factor=1.5, period=10)


class TestTheorem1Schedule:
    def test_formula(self):
        schedule = theorem1_schedule(strong_convexity=2.0, alpha=math.pi / 6)
        # gamma_t = 1 / (lambda (1 - sin alpha) t); sin(pi/6) = 0.5.
        assert schedule.rate(1) == pytest.approx(1.0 / (2.0 * 0.5))
        assert schedule.rate(4) == pytest.approx(1.0 / (2.0 * 0.5 * 4))

    def test_alpha_zero(self):
        schedule = theorem1_schedule(1.0, 0.0)
        assert schedule.rate(1) == pytest.approx(1.0)

    def test_alpha_range_validated(self):
        with pytest.raises(ConfigurationError):
            theorem1_schedule(1.0, math.pi / 2)


class TestSGDOptimizer:
    def test_plain_sgd_step(self):
        optimizer = SGDOptimizer(0.1)
        updated = optimizer.step(np.array([1.0, 2.0]), np.array([1.0, -1.0]))
        assert np.allclose(updated, [0.9, 2.1])

    def test_accepts_float_learning_rate(self):
        assert SGDOptimizer(2.0).schedule.rate(1) == 2.0

    def test_momentum_accumulates(self):
        optimizer = SGDOptimizer(1.0, momentum=0.5)
        w = np.zeros(1)
        g = np.ones(1)
        w = optimizer.step(w, g)  # v = 1, w = -1
        assert w[0] == pytest.approx(-1.0)
        w = optimizer.step(w, g)  # v = 1.5, w = -2.5
        assert w[0] == pytest.approx(-2.5)

    def test_momentum_equals_geometric_sum(self):
        """With constant gradient g, velocity converges to g / (1 - m)."""
        optimizer = SGDOptimizer(0.0001, momentum=0.9)
        w = np.zeros(1)
        for _ in range(500):
            w = optimizer.step(w, np.ones(1))
        assert optimizer.velocity[0] == pytest.approx(10.0, rel=1e-3)

    def test_nesterov_differs_from_heavy_ball(self):
        heavy = SGDOptimizer(0.1, momentum=0.9)
        nesterov = SGDOptimizer(0.1, momentum=0.9, nesterov=True)
        w0 = np.ones(2)
        g = np.array([1.0, -2.0])
        heavy_w = heavy.step(heavy.step(w0, g), g)
        nesterov_w = nesterov.step(nesterov.step(w0, g), g)
        assert not np.allclose(heavy_w, nesterov_w)

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ConfigurationError):
            SGDOptimizer(0.1, momentum=0.0, nesterov=True)

    def test_momentum_range_validated(self):
        with pytest.raises(ConfigurationError):
            SGDOptimizer(0.1, momentum=1.0)

    def test_schedule_respected(self):
        optimizer = SGDOptimizer(InverseTimeSchedule(1.0))
        w = np.zeros(1)
        w = optimizer.step(w, np.ones(1))  # rate 1
        assert w[0] == pytest.approx(-1.0)
        w = optimizer.step(w, np.ones(1))  # rate 1/2
        assert w[0] == pytest.approx(-1.5)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SGDOptimizer(0.1).step(np.zeros(2), np.zeros(3))

    @pytest.mark.filterwarnings("ignore:overflow")
    def test_divergence_detected(self):
        optimizer = SGDOptimizer(1e300)
        with pytest.raises(TrainingError, match="diverged"):
            optimizer.step(np.full(2, 1e100), np.full(2, 1e100))

    def test_reset(self):
        optimizer = SGDOptimizer(0.1, momentum=0.9)
        optimizer.step(np.zeros(2), np.ones(2))
        optimizer.reset()
        assert optimizer.velocity is None
        assert optimizer.step_count == 0

    def test_step_count(self):
        optimizer = SGDOptimizer(0.1)
        for expected in range(1, 4):
            optimizer.step(np.zeros(1), np.zeros(1))
            assert optimizer.step_count == expected

    def test_velocity_returns_copy(self):
        optimizer = SGDOptimizer(0.1, momentum=0.9)
        optimizer.step(np.zeros(2), np.ones(2))
        optimizer.velocity[0] = 999.0
        assert optimizer.velocity[0] != 999.0

    def test_gradient_descent_converges_on_quadratic(self):
        """Minimise ||w - 3||^2 / 2; gradient = w - 3."""
        optimizer = SGDOptimizer(0.5)
        w = np.zeros(1)
        for _ in range(50):
            w = optimizer.step(w, w - 3.0)
        assert w[0] == pytest.approx(3.0, abs=1e-6)
