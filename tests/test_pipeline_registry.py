"""Tests for the unified component registry."""

import numpy as np
import pytest

from repro.attacks import available_attacks
from repro.data.synthetic import make_two_blobs_dataset
from repro.exceptions import ConfigurationError
from repro.gars import available_gars
from repro.gars.base import GAR
from repro.optim.schedules import LearningRateSchedule
from repro.pipeline.registry import (
    REGISTRY,
    ComponentRegistry,
    available_components,
    build_component,
    build_mechanism,
    component_families,
    register_component,
)
from repro.privacy.mechanisms import GaussianMechanism, LaplaceMechanism
from repro.rng import generator_from_seed


class TestParseSpec:
    def test_bare_name(self):
        assert ComponentRegistry.parse_spec("mda") == ("mda", {})

    def test_dict_spec(self):
        name, kwargs = ComponentRegistry.parse_spec({"name": "little", "factor": 2.0})
        assert name == "little"
        assert kwargs == {"factor": 2.0}

    def test_missing_name_rejected(self):
        with pytest.raises(ConfigurationError, match="name"):
            ComponentRegistry.parse_spec({"factor": 2.0})

    def test_non_string_name_rejected(self):
        with pytest.raises(ConfigurationError, match="name"):
            ComponentRegistry.parse_spec({"name": 3})

    def test_wrong_type_rejected(self):
        with pytest.raises(ConfigurationError, match="spec"):
            ComponentRegistry.parse_spec(42)


class TestBuiltinFamilies:
    def test_families_cover_all_builtins(self):
        assert set(component_families()) >= {
            "gar", "attack", "model", "mechanism", "schedule",
            "distribution", "network",
        }

    def test_every_gar_builds(self):
        for name in available_gars():
            spec = {"name": name}
            if name == "average":
                spec["allow_byzantine"] = True
            gar = build_component("gar", spec, n=11, f=2)
            assert isinstance(gar, GAR)
            assert gar.name == name
            assert (gar.n, gar.f) == (11, 2)

    def test_every_attack_builds(self):
        for name in available_attacks():
            attack = build_component("attack", name)
            assert attack.name == name

    @pytest.mark.parametrize("spec, dimension", [
        ({"name": "linear", "num_features": 5}, 6),
        ({"name": "logistic", "num_features": 5}, 6),
        ({"name": "mlp", "num_features": 5, "hidden_units": 4}, 29),
        ({"name": "softmax", "num_features": 5, "num_classes": 3}, 18),
        ({"name": "mean-estimation", "dimension": 4}, 4),
    ])
    def test_every_model_builds(self, spec, dimension):
        model = build_component("model", spec)
        assert model.name == spec["name"]
        assert model.dimension == dimension

    def test_mechanisms_build(self):
        context = dict(epsilon=0.5, delta=1e-6, g_max=0.01, batch_size=50, dimension=69)
        assert isinstance(
            build_component("mechanism", "gaussian", **context), GaussianMechanism
        )
        assert isinstance(
            build_component("mechanism", "laplace", **context), LaplaceMechanism
        )

    def test_schedules_build(self):
        for spec in (
            {"name": "constant", "learning_rate": 2.0},
            {"name": "inverse-time", "scale": 1.5},
            {"name": "step-decay", "initial_rate": 1.0, "factor": 0.5, "period": 10},
        ):
            schedule = build_component("schedule", spec)
            assert isinstance(schedule, LearningRateSchedule)
            assert schedule.rate(1) > 0

    @pytest.mark.parametrize("name", ["shared", "iid-shards", "label-shards"])
    def test_distributions_build(self, name):
        dataset = make_two_blobs_dataset(num_points=60, num_features=4, seed=0)
        shards = build_component(
            "distribution",
            name,
            dataset=dataset,
            num_shards=3,
            rng=generator_from_seed(1),
        )
        assert len(shards) == 3
        if name == "shared":
            assert all(shard is dataset for shard in shards)
        else:
            assert sum(shard.num_points for shard in shards) == dataset.num_points

    def test_networks_build(self):
        perfect = build_component("network", "perfect")
        gradients = np.ones((3, 2))
        assert np.array_equal(perfect.deliver(gradients, step=1), gradients)
        lossy = build_component(
            "network",
            {"name": "lossy", "drop_probability": 0.5, "rng": generator_from_seed(0)},
        )
        assert lossy.deliver(gradients, step=1).shape == gradients.shape


class TestRegistration:
    def test_register_and_build_custom(self):
        registry = ComponentRegistry()
        registry.register("schedule", "fixed-three", lambda: 3)
        assert registry.build("schedule", "fixed-three") == 3
        assert registry.available("schedule") == ("fixed-three",)

    def test_decorator_reads_name_attribute(self):
        registry = ComponentRegistry()

        @registry.register("widget")
        class Widget:
            name = "my-widget"

        assert registry.has("widget", "my-widget")
        assert isinstance(registry.build("widget", "my-widget"), Widget)

    def test_duplicate_rejected_unless_overwrite(self):
        registry = ComponentRegistry()
        registry.register("family", "x", lambda: 1)
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register("family", "x", lambda: 2)
        registry.register("family", "x", lambda: 2, overwrite=True)
        assert registry.build("family", "x") == 2

    def test_unknown_name_lists_available(self):
        with pytest.raises(ConfigurationError, match="unknown gar"):
            build_component("gar", "nope", n=5, f=1)

    def test_unknown_family_lists_families(self):
        with pytest.raises(ConfigurationError, match="unknown component family"):
            build_component("frobnicator", "x")

    def test_spec_kwargs_override_context(self):
        registry = ComponentRegistry()
        registry.register("family", "echo", lambda value: value)
        assert registry.build("family", {"name": "echo", "value": 2}, value=1) == 2

    def test_pre_bootstrap_builtin_override_does_not_poison_registry(self):
        """Registering before first lookup must bootstrap first, so a
        builtin-name override neither collides later nor loses the rest
        of the builtins."""
        from repro.gars.mda import MDAGAR
        from repro.pipeline.registry import _register_builtins

        registry = ComponentRegistry(bootstrap=_register_builtins)
        registry.register("gar", "mda", MDAGAR, overwrite=True)
        assert registry.build("gar", "mda", n=11, f=5).name == "mda"
        assert len(registry.available("attack")) > 0  # builtins intact

    def test_failed_bootstrap_is_retried(self):
        calls = []

        def flaky(registry):
            calls.append(1)
            if len(calls) == 1:
                raise RuntimeError("transient")
            registry.register("family", "x", lambda: 1)

        registry = ComponentRegistry(bootstrap=flaky)
        with pytest.raises(RuntimeError):
            registry.available("family")
        assert registry.build("family", "x") == 1
        assert len(calls) == 2

    def test_legacy_dict_mutation_still_works(self):
        """The pre-pipeline extension path: mutating GAR_REGISTRY after
        bootstrap must stay visible to get_gar/available_gars."""
        from repro.gars import GAR_REGISTRY, available_gars, get_gar
        from repro.gars.average import AverageGAR

        class DictOnlyGAR(AverageGAR):
            """Test double added via the legacy dict."""
            name = "test-dict-gar"

        REGISTRY.available("gar")  # force bootstrap first
        GAR_REGISTRY["test-dict-gar"] = DictOnlyGAR
        try:
            assert "test-dict-gar" in available_gars()
            assert isinstance(get_gar("test-dict-gar", 5, 0), DictOnlyGAR)
        finally:
            del GAR_REGISTRY["test-dict-gar"]

    def test_custom_gar_reachable_through_get_gar(self):
        from repro.gars import get_gar
        from repro.gars.average import AverageGAR

        class TestOnlyGAR(AverageGAR):
            """Test double registered through the unified registry."""
            name = "test-only-gar"

        # overwrite=True keeps this idempotent across repeated runs in
        # one process (the global REGISTRY outlives the test).
        register_component("gar", "test-only-gar", TestOnlyGAR, overwrite=True)
        assert "test-only-gar" in available_gars()
        gar = get_gar("test-only-gar", 5, 0)
        assert isinstance(gar, TestOnlyGAR)
        assert "test-only-gar" in available_components("gar")


class TestBuildMechanism:
    def test_dispatches_by_name(self):
        gaussian = build_mechanism("gaussian", 0.5, 1e-6, 0.01, 50, 69)
        laplace = build_mechanism("laplace", 0.5, 1e-6, 0.01, 50, 69)
        assert isinstance(gaussian, GaussianMechanism)
        assert isinstance(laplace, LaplaceMechanism)

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError, match="noise_kind"):
            build_mechanism("cauchy", 0.5, 1e-6, 0.01, 50, 69)

    def test_registry_is_shared_with_trainer_export(self):
        from repro.distributed.trainer import build_mechanism as trainer_build

        assert trainer_build is build_mechanism
        assert REGISTRY.has("mechanism", "gaussian")
