"""Tests for the experiment harness: configs, runner, figures, tables, IO."""

import numpy as np
import pytest

from repro.data.datasets import train_test_split
from repro.data.phishing import make_phishing_dataset
from repro.exceptions import ConfigurationError
from repro.experiments.config import PAPER_SEEDS, ExperimentConfig
from repro.experiments.figures import (
    FIGURE_BATCH_SIZES,
    figure2_configs,
    figure3_configs,
    figure4_configs,
    figure_configs,
)
from repro.experiments.io import load_outcomes, outcome_to_dict, save_outcomes
from repro.experiments.runner import RunOutcome, phishing_environment, run_config, run_grid
from repro.experiments.tables import format_table1, table1_rows
from repro.models.logistic import LogisticRegressionModel
from repro.rng import generator_from_seed


@pytest.fixture(scope="module")
def tiny_environment():
    dataset = make_phishing_dataset(seed=0, num_points=400, num_features=8)
    train_set, test_set = train_test_split(dataset, 300, generator_from_seed(1))
    model = LogisticRegressionModel(8, loss_kind="mse")
    return model, train_set, test_set


def tiny_config(name="cell", **overrides):
    defaults = dict(
        name=name,
        num_steps=20,
        n=7,
        f=3,
        gar="mda",
        batch_size=8,
        eval_every=10,
        seeds=(1, 2),
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestExperimentConfig:
    def test_defaults_match_paper(self):
        config = ExperimentConfig(name="paper")
        assert config.n == 11
        assert config.f == 5
        assert config.batch_size == 50
        assert config.g_max == 1e-2
        assert config.delta == 1e-6
        assert config.learning_rate == 2.0
        assert config.momentum == 0.99
        assert config.num_steps == 1000
        assert config.seeds == PAPER_SEEDS == (1, 2, 3, 4, 5)

    def test_flags(self):
        assert not tiny_config().uses_dp
        assert tiny_config(epsilon=0.2).uses_dp
        assert not tiny_config().under_attack
        assert tiny_config(attack="little").under_attack
        assert not tiny_config(attack="little", num_byzantine=0).under_attack

    def test_train_kwargs_contents(self):
        config = tiny_config(attack="little", attack_kwargs=(("factor", 2.0),))
        kwargs = config.train_kwargs(seed=3)
        assert kwargs["seed"] == 3
        assert kwargs["attack_kwargs"] == {"factor": 2.0}
        assert kwargs["gar"] == "mda"

    def test_with_updates(self):
        config = tiny_config().with_updates(batch_size=99)
        assert config.batch_size == 99
        assert config.name == "cell"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            tiny_config(name="")
        with pytest.raises(ConfigurationError):
            tiny_config(seeds=())
        with pytest.raises(ConfigurationError):
            tiny_config(num_steps=0)

    def test_describe(self):
        text = tiny_config(epsilon=0.2).describe()
        assert "eps=0.2" in text and "mda" in text


class TestRunner:
    def test_phishing_environment_shapes(self):
        model, train_set, test_set = phishing_environment()
        assert model.dimension == 69
        assert train_set.num_points == 8400
        assert test_set.num_points == 2655

    def test_run_config_aggregates_seeds(self, tiny_environment):
        model, train_set, test_set = tiny_environment
        outcome = run_config(tiny_config(), model, train_set, test_set)
        assert len(outcome.histories) == 2
        assert len(outcome.loss_stats.mean) == 20
        assert outcome.accuracy_stats is not None
        assert outcome.final_loss_mean > 0

    def test_run_config_without_test_set(self, tiny_environment):
        model, train_set, _ = tiny_environment
        outcome = run_config(tiny_config(), model, train_set, None)
        assert outcome.accuracy_stats is None
        assert outcome.final_accuracy_mean is None

    def test_summary_row(self, tiny_environment):
        model, train_set, test_set = tiny_environment
        outcome = run_config(tiny_config(epsilon=0.3), model, train_set, test_set)
        row = outcome.summary_row()
        assert row["name"] == "cell"
        assert row["epsilon"] == 0.3
        assert row["attack"] == "none"

    def test_run_grid(self, tiny_environment):
        model, train_set, test_set = tiny_environment
        configs = [tiny_config("a"), tiny_config("b", epsilon=0.5)]
        outcomes = run_grid(configs, model, train_set, test_set)
        assert set(outcomes) == {"a", "b"}

    def test_run_grid_rejects_duplicates(self, tiny_environment):
        model, train_set, test_set = tiny_environment
        with pytest.raises(ValueError, match="duplicate"):
            run_grid([tiny_config("a"), tiny_config("a")], model, train_set, test_set)

    def test_privacy_report_present_for_dp(self, tiny_environment):
        model, train_set, test_set = tiny_environment
        outcome = run_config(tiny_config(epsilon=0.5), model, train_set, test_set)
        assert outcome.privacy is not None
        assert outcome.privacy.per_step.epsilon == 0.5


class TestFigureConfigs:
    def test_batch_sizes(self):
        assert FIGURE_BATCH_SIZES == {"figure2": 50, "figure3": 10, "figure4": 500}
        assert all(c.batch_size == 50 for c in figure2_configs())
        assert all(c.batch_size == 10 for c in figure3_configs())
        assert all(c.batch_size == 500 for c in figure4_configs())

    def test_eight_cells(self):
        configs = figure2_configs()
        assert len(configs) == 8
        names = {c.name for c in configs}
        assert "mda-little-dp" in names and "avg-noattack-nodp" in names

    def test_dp_split(self):
        configs = figure2_configs()
        dp = [c for c in configs if c.uses_dp]
        nodp = [c for c in configs if not c.uses_dp]
        assert len(dp) == len(nodp) == 4
        assert all(c.epsilon == 0.2 for c in dp)

    def test_attack_cells_use_mda_f5(self):
        for config in figure2_configs():
            if config.attack is not None:
                assert config.gar == "mda"
                assert config.f == 5

    def test_average_cells_have_no_attack(self):
        for config in figure2_configs():
            if config.gar == "average":
                assert config.attack is None
                assert config.f == 0

    def test_overrides_flow_through(self):
        configs = figure_configs(batch_size=25, num_steps=10, seeds=(1,))
        assert all(c.num_steps == 10 and c.seeds == (1,) for c in configs)


class TestTable1:
    def test_rows_cover_seven_gars(self):
        rows = table1_rows(dimension=69, n=11, f=5, batch_size=50, epsilon=0.2, delta=1e-6)
        assert len(rows) == 7
        names = [row.gar for row in rows]
        assert "mda" in names and "krum" in names and "phocas" in names

    def test_krum_not_applicable_at_paper_nf(self):
        rows = {r.gar: r for r in table1_rows(69, 11, 5, 50, 0.2, 1e-6)}
        assert not rows["krum"].applicable
        assert not rows["bulyan"].applicable
        assert rows["mda"].applicable

    def test_paper_configuration_infeasible(self):
        rows = {r.gar: r for r in table1_rows(69, 11, 5, 50, 0.2, 1e-6)}
        assert rows["mda"].feasible_at_configuration is False

    def test_fraction_vs_batch_bounds(self):
        rows = {r.gar: r for r in table1_rows(69, 11, 4, 50, 0.2, 1e-6)}
        assert rows["mda"].max_byzantine_fraction is not None
        assert rows["mda"].min_batch_size is None
        assert rows["krum"].min_batch_size is not None
        assert rows["krum"].max_byzantine_fraction is None

    def test_format_renders(self):
        rows = table1_rows(69, 11, 5, 50, 0.2, 1e-6)
        text = format_table1(rows, 69, 50)
        assert "Table 1" in text
        assert "mda" in text


class TestIO:
    def test_round_trip(self, tiny_environment, tmp_path):
        model, train_set, test_set = tiny_environment
        outcome = run_config(tiny_config(epsilon=0.4), model, train_set, test_set)
        path = tmp_path / "results.json"
        save_outcomes({"cell": outcome}, path)
        restored = load_outcomes(path)["cell"]
        assert restored.config == outcome.config
        assert np.allclose(restored.loss_stats.mean, outcome.loss_stats.mean)
        assert np.allclose(restored.accuracy_stats.mean, outcome.accuracy_stats.mean)
        assert len(restored.histories) == len(outcome.histories)

    def test_dict_shape(self, tiny_environment):
        model, train_set, test_set = tiny_environment
        outcome = run_config(tiny_config(), model, train_set, None)
        payload = outcome_to_dict(outcome)
        assert payload["accuracy_stats"] is None
        assert payload["privacy"] is None
        assert len(payload["histories"]) == 2
