"""Tests for training history and cross-seed aggregation."""

import numpy as np
import pytest

from repro.metrics.aggregate import SeriesStats, aggregate_accuracy, aggregate_losses
from repro.metrics.history import TrainingHistory


def make_history(losses, accuracies=None, accuracy_every=2):
    history = TrainingHistory()
    for step, loss in enumerate(losses, start=1):
        history.record_loss(step, loss)
    if accuracies is not None:
        for index, accuracy in enumerate(accuracies):
            history.record_accuracy(index * accuracy_every, accuracy)
    return history


class TestTrainingHistory:
    def test_arrays(self):
        history = make_history([0.5, 0.4, 0.3])
        assert np.array_equal(history.loss_steps, [1, 2, 3])
        assert np.array_equal(history.losses, [0.5, 0.4, 0.3])

    def test_summary_properties(self):
        history = make_history([0.5, 0.2, 0.3], accuracies=[0.6, 0.9])
        assert history.final_loss == 0.3
        assert history.min_loss == 0.2
        assert history.final_accuracy == 0.9
        assert history.max_accuracy == 0.9
        assert len(history) == 3

    def test_steps_must_increase(self):
        history = make_history([0.5])
        with pytest.raises(ValueError, match="increasing"):
            history.record_loss(1, 0.4)

    def test_accuracy_steps_must_increase(self):
        history = TrainingHistory()
        history.record_accuracy(0, 0.5)
        with pytest.raises(ValueError, match="increasing"):
            history.record_accuracy(0, 0.6)

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="no losses"):
            TrainingHistory().final_loss

    def test_steps_to_loss(self):
        history = make_history([0.5, 0.4, 0.1, 0.2])
        assert history.steps_to_loss(0.4) == 2
        assert history.steps_to_loss(0.05) is None

    def test_mean_loss_over_last(self):
        history = make_history([1.0, 0.5, 0.3])
        assert history.mean_loss_over_last(2) == pytest.approx(0.4)
        assert history.mean_loss_over_last(10) == pytest.approx(0.6)

    def test_round_trip_dict(self):
        history = make_history([0.5, 0.4], accuracies=[0.7, 0.8])
        restored = TrainingHistory.from_dict(history.to_dict())
        assert np.array_equal(restored.losses, history.losses)
        assert np.array_equal(restored.accuracies, history.accuracies)
        assert np.array_equal(restored.accuracy_steps, history.accuracy_steps)

    def test_repr(self):
        history = make_history([0.5])
        assert "final_loss" in repr(history)


class TestAggregation:
    def test_loss_mean_std(self):
        histories = [make_history([1.0, 2.0]), make_history([3.0, 4.0])]
        stats = aggregate_losses(histories)
        assert np.allclose(stats.mean, [2.0, 3.0])
        assert np.allclose(stats.std, [1.0, 1.0])
        assert stats.final_mean == pytest.approx(3.0)

    def test_accuracy_aggregation(self):
        histories = [
            make_history([1.0], accuracies=[0.5, 0.7]),
            make_history([1.0], accuracies=[0.9, 0.9]),
        ]
        stats = aggregate_accuracy(histories)
        assert np.allclose(stats.mean, [0.7, 0.8])

    def test_misaligned_steps_rejected(self):
        with pytest.raises(ValueError, match="different steps"):
            aggregate_losses([make_history([1.0, 2.0]), make_history([1.0])])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            aggregate_losses([])

    def test_single_history(self):
        stats = aggregate_losses([make_history([1.0, 2.0])])
        assert np.allclose(stats.std, 0.0)

    def test_series_stats_validation(self):
        with pytest.raises(ValueError, match="equal lengths"):
            SeriesStats(steps=np.array([1]), mean=np.array([1.0, 2.0]), std=np.array([0.0]))

    def test_series_stats_round_trip(self):
        stats = SeriesStats(
            steps=np.array([1, 2]), mean=np.array([0.5, 0.4]), std=np.array([0.1, 0.2])
        )
        restored = SeriesStats.from_dict(stats.to_dict())
        assert np.array_equal(restored.steps, stats.steps)
        assert np.array_equal(restored.mean, stats.mean)
