"""Tests for the linear regression model."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.models.linear import LinearRegressionModel
from tests.helpers import numerical_gradient


@pytest.fixture
def batch():
    rng = np.random.default_rng(0)
    features = rng.standard_normal((15, 3))
    true_weights = np.array([1.0, -2.0, 0.5, 0.3])  # includes bias
    labels = np.hstack([features, np.ones((15, 1))]) @ true_weights
    return features, labels, true_weights


class TestLinearRegression:
    def test_dimension(self):
        assert LinearRegressionModel(3).dimension == 4

    def test_invalid_features(self):
        with pytest.raises(ConfigurationError):
            LinearRegressionModel(-1)

    def test_gradient_matches_numerical(self, batch):
        features, labels, _ = batch
        model = LinearRegressionModel(3)
        w = np.random.default_rng(1).standard_normal(4)
        numeric = numerical_gradient(lambda p: model.loss(p, features, labels), w)
        assert np.allclose(model.gradient(w, features, labels), numeric, atol=1e-6)

    def test_per_example_mean_equals_batch(self, batch):
        features, labels, _ = batch
        model = LinearRegressionModel(3)
        w = np.random.default_rng(2).standard_normal(4)
        per_example = model.per_example_gradients(w, features, labels)
        assert np.allclose(per_example.mean(axis=0), model.gradient(w, features, labels))

    def test_zero_loss_at_true_weights(self, batch):
        features, labels, true_weights = batch
        model = LinearRegressionModel(3)
        assert model.loss(true_weights, features, labels) == pytest.approx(0.0, abs=1e-20)

    def test_zero_gradient_at_true_weights(self, batch):
        features, labels, true_weights = batch
        model = LinearRegressionModel(3)
        assert np.linalg.norm(model.gradient(true_weights, features, labels)) < 1e-12

    def test_solve_exact_recovers_weights(self, batch):
        features, labels, true_weights = batch
        model = LinearRegressionModel(3)
        solution = model.solve_exact(features, labels)
        assert np.allclose(solution, true_weights, atol=1e-8)

    def test_solve_exact_minimises_loss(self, batch):
        features, labels, _ = batch
        model = LinearRegressionModel(3)
        solution = model.solve_exact(features, labels)
        best = model.loss(solution, features, labels)
        rng = np.random.default_rng(5)
        for _ in range(10):
            other = solution + 0.1 * rng.standard_normal(4)
            assert model.loss(other, features, labels) >= best

    def test_not_a_classifier(self, batch):
        features, _, _ = batch
        with pytest.raises(NotImplementedError):
            LinearRegressionModel(3).predict(np.zeros(4), features)
