"""Campaign runner tests: planning, caching, crash-resume, bookkeeping."""

import numpy as np
import pytest

from repro.campaign.matrix import ScenarioMatrix
from repro.campaign.runner import execute_cell, job_key, plan_campaign, run_campaign
from repro.campaign.store import ResultStore, cell_key
from repro.campaign.report import render_campaign_report

MATRIX = {
    "name": "runner-test",
    "model": {"name": "logistic", "loss_kind": "mse"},
    "data_seed": 0,
    "base": {
        "num_steps": 2,
        "n": 3,
        "f": 1,
        "batch_size": 5,
        "eval_every": 1,
        "seeds": [1, 2],
    },
    "axes": {"gar": ["mda", "median"], "attack": [None, "little"]},
    "report": {"rows": "gar", "cols": "attack", "metrics": ["final_accuracy"]},
}


@pytest.fixture()
def matrix():
    return ScenarioMatrix.from_dict(MATRIX)


class CountingExecutor:
    """Serial execute wrapper that counts runs and can crash mid-campaign."""

    def __init__(self, crash_after: int | None = None):
        self.calls: list[tuple[str, int]] = []
        self._crash_after = crash_after

    def __call__(self, job):
        if self._crash_after is not None and len(self.calls) >= self._crash_after:
            # KeyboardInterrupt, not an Exception: a genuine kill must
            # bypass the runner's retry/quarantine net and abort.
            raise KeyboardInterrupt("simulated mid-campaign kill")
        self.calls.append((job.name, job.seed))
        return execute_cell(job)


class TestPlanning:
    def test_cold_plan_is_all_pending(self, matrix, tmp_path):
        plan = plan_campaign(matrix, ResultStore(tmp_path / "store"))
        assert len(plan.pending) == 8  # 4 cells x 2 seeds
        assert plan.completed == ()
        assert plan.total_runs == 8

    def test_plan_order_matches_matrix(self, matrix, tmp_path):
        plan = plan_campaign(matrix, ResultStore(tmp_path / "store"))
        names = [job.name for job in plan.pending]
        assert names == sorted(names, key=names.index)  # stable, grouped by cell
        assert [job.seed for job in plan.pending[:2]] == [1, 2]

    def test_job_key_matches_cell_key(self, matrix, tmp_path):
        plan = plan_campaign(matrix, ResultStore(tmp_path / "store"))
        job = plan.pending[0]
        cell = matrix.cells[0]
        assert job.key == job_key(cell, job.seed, matrix)
        assert job.key == cell_key(
            cell.config,
            job.seed,
            mode=cell.mode,
            data_seed=matrix.data_seed,
            model_spec=matrix.model_spec,
        )

    def test_smoke_plan_trims_seeds(self, matrix, tmp_path):
        plan = plan_campaign(matrix, ResultStore(tmp_path / "store"), smoke=True)
        assert len(plan.pending) == 4  # one seed per cell


class TestRunCampaign:
    def test_executes_all_then_skips_all(self, matrix, tmp_path):
        store = ResultStore(tmp_path / "store")
        first = run_campaign(matrix, store)
        assert (first.executed, first.skipped) == (8, 0)
        assert len(store) == 8
        second = run_campaign(matrix, store)
        assert (second.executed, second.skipped) == (0, 8)
        assert "8 total" in second.describe()

    def test_records_are_complete(self, matrix, tmp_path):
        store = ResultStore(tmp_path / "store")
        run_campaign(matrix, store)
        plan = plan_campaign(matrix, store)
        assert not plan.pending
        for name, seed, key in plan.completed:
            record = store.load(key)
            assert record["name"] == name
            assert record["seed"] == seed
            assert record["mode"] == "train"
            assert np.isfinite(record["final_loss"])
            assert len(record["final_parameters"]) > 0
            assert record["history"]["losses"]

    def test_crash_resume_completes_only_missing_cells(self, matrix, tmp_path):
        """Kill a campaign mid-run; re-invoking completes only the rest,
        and the final report is byte-identical to an uninterrupted run."""
        interrupted_store = ResultStore(tmp_path / "interrupted")
        crashing = CountingExecutor(crash_after=3)
        with pytest.raises(KeyboardInterrupt):
            run_campaign(matrix, interrupted_store, execute=crashing)
        assert len(interrupted_store) == 3  # the completed prefix survived

        resumed = CountingExecutor()
        summary = run_campaign(matrix, interrupted_store, execute=resumed)
        assert summary.executed == 5  # only the missing cells ran
        assert summary.skipped == 3
        assert len(resumed.calls) == 5
        assert set(resumed.calls).isdisjoint(crashing.calls)

        uninterrupted_store = ResultStore(tmp_path / "uninterrupted")
        run_campaign(matrix, uninterrupted_store)
        assert render_campaign_report(matrix, interrupted_store) == \
            render_campaign_report(matrix, uninterrupted_store)

    def test_verbose_lists_runs(self, matrix, tmp_path, capsys):
        run_campaign(matrix, ResultStore(tmp_path / "store"), verbose=True)
        output = capsys.readouterr().out
        assert "8 pending run(s)" in output
        assert "seed 2" in output

    def test_diverged_runs_are_flagged(self, matrix, tmp_path):
        def fake_execute(job):
            loss = float("inf") if job.name.startswith("gar=mda") else 0.5
            return {"final_loss": loss, "name": job.name, "seed": job.seed}

        store = ResultStore(tmp_path / "store")
        summary = run_campaign(matrix, store, execute=fake_execute)
        assert len(summary.diverged) == 4  # mda cells x 2 seeds, both attacks
        assert "non-finite" in summary.describe()
        # Cached non-finite records stay flagged on re-invocation.
        again = run_campaign(matrix, store, execute=fake_execute)
        assert again.executed == 0
        assert len(again.diverged) == 4


class TestExecuteCell:
    def test_vn_summary_for_train_cells(self, matrix, tmp_path):
        store = ResultStore(tmp_path / "store")
        run_campaign(matrix, store)
        records = [store.load(key) for key in store.keys()]
        assert all(record["vn"] is not None for record in records)
        for record in records:
            assert record["vn"]["median_submitted"] > 0
            assert 0.0 <= record["vn"]["submitted_violation_fraction"] <= 1.0
        assert all(record["simulation"] is None for record in records)

    def test_simulate_mode_records_simulation_block(self, tmp_path):
        document = dict(MATRIX)
        document["axes"] = {"gar": ["mda"]}
        document["mode"] = "simulate"
        document["base"] = dict(
            MATRIX["base"], policy="semi-sync", policy_kwargs={"buffer_size": 2},
            latency="constant", latency_kwargs={"delay": 1.0}, seeds=[1],
        )
        matrix = ScenarioMatrix.from_dict(document)
        store = ResultStore(tmp_path / "store")
        run_campaign(matrix, store)
        record = store.load(store.keys()[0])
        assert record["mode"] == "simulate"
        simulation = record["simulation"]
        assert simulation["policy"] == "semi-sync"
        assert simulation["virtual_time"] > 0
        assert simulation["rounds"] >= 2
        assert record["vn"] is None
