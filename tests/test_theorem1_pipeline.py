"""Fast integration tests of the Theorem 1 experimental pipeline.

Miniature versions of benchmarks/bench_theorem1.py: mean estimation
with the oracle GAR, checking the estimator-vs-bounds relationships at
a scale that runs in seconds.
"""

import numpy as np
import pytest

from repro.core.convergence import theorem1_bounds
from repro.data.synthetic import make_gaussian_mean_dataset
from repro.distributed.trainer import train
from repro.models.quadratic import MeanEstimationModel
from repro.optim.schedules import theorem1_schedule

T, BATCH = 150, 120
EPSILON, DELTA, G_MAX, SIGMA = 0.9, 1e-6, 2.0, 1.0


def run_error(dimension, epsilon, seeds=(1, 2, 3, 4, 5)):
    model = MeanEstimationModel(dimension)
    errors = []
    for seed in seeds:
        mean = np.zeros(dimension)
        mean[0] = 0.1
        dataset = make_gaussian_mean_dataset(dimension, 5000, SIGMA, mean, seed)
        result = train(
            model=model,
            train_dataset=dataset,
            num_steps=T,
            n=5,
            f=2,
            num_byzantine=0,
            gar="oracle",
            batch_size=BATCH,
            g_max=G_MAX,
            epsilon=epsilon,
            delta=DELTA,
            learning_rate=theorem1_schedule(model.STRONG_CONVEXITY, 0.0),
            momentum=0.0,
            seed=seed,
        )
        optimum = model.optimum(dataset.features)
        errors.append(0.5 * float(np.sum((result.final_parameters - optimum) ** 2)))
    return float(np.mean(errors))


@pytest.mark.slow
class TestTheorem1Pipeline:
    def test_sgd_with_inverse_t_is_running_average(self):
        """With gamma_t = 1/t (lambda=1, alpha=0) SGD on the quadratic
        computes exactly the running average of its noisy observations —
        so its error must sit at the CR lower bound, not just above it."""
        dimension = 16
        error = run_error(dimension, EPSILON)
        bounds = theorem1_bounds(
            T=T, dimension=dimension, batch_size=BATCH, epsilon=EPSILON,
            delta=DELTA, g_max=G_MAX, sigma=SIGMA,
        )
        assert 0.5 * bounds.lower <= error <= 2.5 * bounds.lower
        assert error <= bounds.upper

    def test_error_grows_with_dimension_under_dp(self):
        small = run_error(4, EPSILON)
        large = run_error(64, EPSILON)
        # Theory ratio ~ (sigma^2/b + 64 s^2-ish terms); dominated by d.
        assert large > 5 * small

    def test_error_flat_in_dimension_without_dp(self):
        small = run_error(4, None)
        large = run_error(64, None)
        assert large < 3 * small

    def test_dp_strictly_worse_than_clean(self):
        assert run_error(16, EPSILON) > 5 * run_error(16, None)

    def test_oracle_ignores_byzantine_submissions(self):
        """With the oracle GAR even an active attack is irrelevant —
        footnote 2's point that this GAR sidesteps the whole problem."""
        dimension = 8
        model = MeanEstimationModel(dimension)
        mean = np.zeros(dimension)
        dataset = make_gaussian_mean_dataset(dimension, 2000, SIGMA, mean, 1)
        shared = dict(
            model=model,
            train_dataset=dataset,
            num_steps=50,
            n=5,
            f=2,
            batch_size=50,
            g_max=G_MAX,
            learning_rate=theorem1_schedule(1.0, 0.0),
            momentum=0.0,
            seed=3,
        )
        attacked = train(gar="oracle", attack="little", **shared)
        clean = train(gar="oracle", num_byzantine=0, **shared)
        assert np.allclose(attacked.final_parameters, clean.final_parameters)
