"""CLI surface of the fault plane: ``run --faults``, campaign ``--retries``.

Exit-code contract: a fault plan that leaves no honest worker
(:class:`DegradedRunError`) and a campaign with quarantined cells both
exit 1 — results, like divergence — while malformed plans stay exit 2
(usage errors).
"""

import json

import pytest

from repro.campaign.store import ResultStore
from repro.experiments.cli import _parse_faults, build_parser, main

CELL = {
    "name": "faulty",
    "num_steps": 4,
    "n": 3,
    "f": 0,
    "gar": "average",
    "batch_size": 5,
    "eval_every": 2,
    "seeds": [1],
}

MATRIX = {
    "name": "cli-retry",
    "model": {"name": "logistic", "loss_kind": "mse"},
    "data_seed": 0,
    "base": {
        "num_steps": 2,
        "n": 3,
        "f": 1,
        "batch_size": 5,
        "eval_every": 1,
        "seeds": [1],
    },
    "axes": {"gar": ["mda"]},
    "report": {"rows": "gar", "metrics": ["final_accuracy"]},
}


def write_cell(tmp_path, **overrides):
    path = tmp_path / "config.json"
    path.write_text(json.dumps(dict(CELL, **overrides)))
    return path


class TestParser:
    def test_run_faults_flag(self):
        arguments = build_parser().parse_args(
            ["run", "grid.json", "--faults", "random"]
        )
        assert arguments.faults == "random"

    def test_campaign_retries_default(self):
        arguments = build_parser().parse_args(["campaign", "matrix.json"])
        assert arguments.retries == 2

    def test_parse_faults_json_object(self):
        plan = _parse_faults(' {"events": [], "num_shards": 2} ')
        assert plan == {"events": [], "num_shards": 2}

    def test_parse_faults_model_name(self):
        assert _parse_faults("random") == "random"


class TestRunFaults:
    def test_inline_plan_runs(self, tmp_path, capsys):
        plan = {"events": [{"kind": "drop_round", "round": 2, "worker": 1}]}
        code = main(
            ["run", str(write_cell(tmp_path)), "--faults", json.dumps(plan)]
        )
        assert code == 0
        assert "final loss" in capsys.readouterr().out

    def test_flag_overrides_config_file(self, tmp_path, capsys):
        # The file's plan would kill every shard; the flag replaces it.
        lethal = {
            "events": [
                {"kind": "crash", "round": 2, "shard": 0},
                {"kind": "crash", "round": 2, "shard": 1},
                {"kind": "crash", "round": 2, "shard": 2},
            ],
            "num_shards": 3,
        }
        path = write_cell(tmp_path, faults=lethal)
        benign = {"events": [{"kind": "slow", "round": 2, "worker": 0, "factor": 2.0}]}
        assert main(["run", str(path), "--faults", json.dumps(benign)]) == 0
        capsys.readouterr()

    def test_degraded_run_exits_1(self, tmp_path, capsys):
        lethal = {
            "events": [
                {"kind": "crash", "round": 2, "shard": 0},
                {"kind": "crash", "round": 2, "shard": 1},
                {"kind": "crash", "round": 2, "shard": 2},
            ],
            "num_shards": 3,
        }
        code = main(
            ["run", str(write_cell(tmp_path)), "--faults", json.dumps(lethal)]
        )
        assert code == 1
        errors = capsys.readouterr().err
        assert "error:" in errors
        assert "honest worker" in errors

    def test_malformed_plan_exits_2(self, tmp_path, capsys):
        bad = {"events": [{"kind": "meteor", "round": 1, "worker": 0}]}
        code = main(
            ["run", str(write_cell(tmp_path)), "--faults", json.dumps(bad)]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_unparseable_plan_json_exits_2(self, tmp_path, capsys):
        code = main(["run", str(write_cell(tmp_path)), "--faults", "{oops"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestCampaignRetries:
    @pytest.fixture()
    def matrix_path(self, tmp_path):
        path = tmp_path / "matrix.json"
        path.write_text(json.dumps(MATRIX))
        return path

    def test_quarantined_campaign_exits_1(
        self, matrix_path, tmp_path, capsys, monkeypatch
    ):
        import repro.campaign.runner as runner_module

        def always_fails(job):
            raise RuntimeError("worker box caught fire")

        monkeypatch.setattr(runner_module, "execute_cell", always_fails)
        store_dir = tmp_path / "store"
        code = main(
            ["campaign", str(matrix_path), "--store", str(store_dir),
             "--retries", "0"]
        )
        assert code == 1
        assert "quarantined" in capsys.readouterr().out
        # The quarantine record landed in the store with the failure.
        store = ResultStore(store_dir)
        [record] = [store.load(key) for key in store.keys()]
        assert record["quarantined"] is True
        assert record["error"]["message"] == "worker box caught fire"

    def test_resume_after_quarantine_stays_exit_1(
        self, matrix_path, tmp_path, capsys, monkeypatch
    ):
        import repro.campaign.runner as runner_module

        def always_fails(job):
            raise RuntimeError("still on fire")

        monkeypatch.setattr(runner_module, "execute_cell", always_fails)
        store_dir = tmp_path / "store"
        assert main(
            ["campaign", str(matrix_path), "--store", str(store_dir),
             "--retries", "0"]
        ) == 1
        monkeypatch.undo()
        capsys.readouterr()
        # The resume never re-runs the quarantined cell (the healthy
        # executor is back, but the record is settled) and still flags it.
        assert main(
            ["campaign", str(matrix_path), "--store", str(store_dir)]
        ) == 1
        output = capsys.readouterr().out
        assert "0 run(s) executed, 1 cached" in output
        assert "quarantined" in output
