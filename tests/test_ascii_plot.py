"""Tests for the ASCII plotting helper."""

import pytest

from repro.experiments.ascii_plot import ascii_line_plot


class TestAsciiLinePlot:
    def test_renders_title_and_legend(self):
        text = ascii_line_plot(
            {"loss": ([1, 2, 3], [0.5, 0.4, 0.3])}, title="Figure 2"
        )
        assert "Figure 2" in text
        assert "loss" in text

    def test_multiple_series_get_distinct_markers(self):
        text = ascii_line_plot(
            {
                "a": ([1, 2], [1.0, 2.0]),
                "b": ([1, 2], [2.0, 1.0]),
            }
        )
        assert "o a" in text
        assert "x b" in text

    def test_log_scale_drops_nonpositive(self):
        text = ascii_line_plot(
            {"s": ([1, 2, 3], [0.0, 1.0, 10.0])}, log_y=True
        )
        assert "s" in text  # renders despite the zero

    def test_flat_series_handled(self):
        text = ascii_line_plot({"flat": ([1, 2, 3], [1.0, 1.0, 1.0])})
        assert "flat" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            ascii_line_plot({})

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="mismatched"):
            ascii_line_plot({"bad": ([1, 2], [1.0])})

    def test_all_nonfinite_rejected(self):
        with pytest.raises(ValueError, match="no finite"):
            ascii_line_plot({"bad": ([1], [float("nan")])})

    def test_tiny_canvas_rejected(self):
        with pytest.raises(ValueError, match="canvas"):
            ascii_line_plot({"s": ([1], [1.0])}, width=2, height=2)

    def test_dimensions(self):
        text = ascii_line_plot({"s": ([1, 2], [1.0, 2.0])}, width=40, height=10)
        lines = text.split("\n")
        # 1 top axis + 10 canvas rows + x labels + legend.
        assert len(lines) == 13

    def test_markers_land_at_extremes(self):
        text = ascii_line_plot({"s": ([0, 1], [0.0, 1.0])}, width=20, height=5)
        lines = text.split("\n")
        canvas = lines[1:6]
        assert "o" in canvas[0]  # max value on top row
        assert "o" in canvas[-1]  # min value on bottom row
