"""Fault-plan model tests: validation, round-trips, resolution, sampling."""

import pytest

from repro.exceptions import ConfigurationError
from repro.faults import (
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    build_fault_plan,
    sample_fault_plan,
    shard_partition,
)
from repro.rng import SeedTree


def plan_crash_rejoin():
    """Shard 1 (of 3) down for rounds 2..3, plus one of each worker fault."""
    return FaultPlan(
        events=(
            FaultEvent(round=2, kind="crash", shard=1),
            FaultEvent(round=4, kind="rejoin", shard=1),
            FaultEvent(round=3, kind="drop_round", worker=0),
            FaultEvent(round=5, kind="corrupt_payload", worker=2, factor=10.0),
            FaultEvent(round=5, kind="slow", worker=0, factor=4.0),
        ),
        num_shards=3,
    )


class TestFaultEvent:
    def test_kind_validation(self):
        with pytest.raises(ConfigurationError, match="fault kind"):
            FaultEvent(round=1, kind="explode", worker=0)
        assert set(FAULT_KINDS) == {
            "crash", "hang", "slow", "drop_round", "corrupt_payload", "rejoin"
        }

    def test_rounds_are_one_based(self):
        with pytest.raises(ConfigurationError, match="1-based"):
            FaultEvent(round=0, kind="crash", shard=0)

    def test_scope_validation(self):
        with pytest.raises(ConfigurationError, match="shard-scoped"):
            FaultEvent(round=1, kind="crash", worker=0)
        with pytest.raises(ConfigurationError, match="shard-scoped"):
            FaultEvent(round=1, kind="rejoin", shard=0, worker=0)
        with pytest.raises(ConfigurationError, match="worker-scoped"):
            FaultEvent(round=1, kind="drop_round", shard=0)
        with pytest.raises(ConfigurationError, match="worker-scoped"):
            FaultEvent(round=1, kind="corrupt_payload")

    def test_factor_validation(self):
        with pytest.raises(ConfigurationError, match="finite"):
            FaultEvent(round=1, kind="corrupt_payload", worker=0, factor=float("nan"))
        with pytest.raises(ConfigurationError, match="slow factor"):
            FaultEvent(round=1, kind="slow", worker=0, factor=0.0)

    def test_dict_round_trip_emits_only_used_fields(self):
        crash = FaultEvent(round=2, kind="crash", shard=1)
        assert crash.to_dict() == {"round": 2, "kind": "crash", "shard": 1}
        corrupt = FaultEvent(round=3, kind="corrupt_payload", worker=0, factor=5.0)
        assert corrupt.to_dict() == {
            "round": 3, "kind": "corrupt_payload", "worker": 0, "factor": 5.0
        }
        for event in (crash, corrupt):
            assert FaultEvent.from_dict(event.to_dict()) == event

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError, match="unknown fault event"):
            FaultEvent.from_dict({"round": 1, "kind": "crash", "shard": 0, "x": 1})


class TestShardPartition:
    def test_contiguous_cover(self):
        assert shard_partition(5, 2) == [(0, 1, 2), (3, 4)]
        assert shard_partition(4, 4) == [(0,), (1,), (2,), (3,)]
        assert shard_partition(3, 1) == [(0, 1, 2)]

    def test_matches_builder_split(self):
        # The fault plane must agree with Experiment.build_shard_specs.
        from repro.data.phishing import make_phishing_dataset
        from repro.models.logistic import LogisticRegressionModel
        from repro.pipeline.builder import Experiment

        experiment = Experiment(
            model=LogisticRegressionModel(6),
            train_dataset=make_phishing_dataset(seed=0, num_points=100, num_features=6),
            num_steps=2, n=5, f=0, gar="average", batch_size=10, seed=1,
            backend="multiprocess", num_shards=2,
        )
        specs = experiment.build_shard_specs()
        assert [spec.worker_ids for spec in specs] == shard_partition(5, 2)

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="num_shards"):
            shard_partition(3, 0)
        with pytest.raises(ConfigurationError, match="cannot split"):
            shard_partition(2, 3)


class TestFaultPlan:
    def test_dict_round_trip(self):
        plan = plan_crash_rejoin()
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_shard_bounds_checked(self):
        with pytest.raises(ConfigurationError, match="shard 5"):
            FaultPlan(
                events=(FaultEvent(round=1, kind="crash", shard=5),), num_shards=2
            )

    def test_rejoin_without_departure_rejected(self):
        with pytest.raises(ConfigurationError, match="no preceding"):
            FaultPlan(
                events=(FaultEvent(round=3, kind="rejoin", shard=0),), num_shards=1
            )

    def test_double_crash_rejected(self):
        with pytest.raises(ConfigurationError, match="already down"):
            FaultPlan(
                events=(
                    FaultEvent(round=1, kind="crash", shard=0),
                    FaultEvent(round=3, kind="hang", shard=0),
                ),
                num_shards=2,
            )

    def test_rejoin_must_follow_departure(self):
        # A same-round pair is a rejoin *before* the crash (rejoin sorts
        # first), so the rejoin has nothing to close: rejected.
        with pytest.raises(ConfigurationError, match="no preceding"):
            FaultPlan(
                events=(
                    FaultEvent(round=3, kind="crash", shard=0),
                    FaultEvent(round=3, kind="rejoin", shard=0),
                ),
                num_shards=2,
            )

    def test_same_round_rejoin_then_crash_is_legal(self):
        # "rejoin at r" means present at r, so a fresh crash at r opens
        # a second outage over the rejoined state.
        plan = FaultPlan(
            events=(
                FaultEvent(round=2, kind="crash", shard=0),
                FaultEvent(round=4, kind="rejoin", shard=0),
                FaultEvent(round=4, kind="crash", shard=0),
            ),
            num_shards=2,
        )
        resolved = plan.resolve(2)
        outages = resolved.shard_outages(0)
        assert [(o.start, o.rejoin) for o in outages] == [(2, 4), (4, None)]

    def test_max_round(self):
        assert FaultPlan().max_round == 0
        assert plan_crash_rejoin().max_round == 5


class TestResolvedFaultPlan:
    def test_per_round_lookups(self):
        resolved = plan_crash_rejoin().resolve(3)  # shard i -> worker i
        assert resolved.partition == ((0,), (1,), (2,))
        assert resolved.down_shards(1) == frozenset()
        assert resolved.down_shards(2) == {1}
        assert resolved.down_shards(3) == {1}
        assert resolved.down_shards(4) == frozenset()  # rejoined
        assert resolved.rejoining_shards(4) == (1,)
        assert resolved.absent_workers(2) == {1}
        assert resolved.dropped_workers(3) == {0}
        assert resolved.zeroed_workers(3) == {0, 1}  # dropped + absent
        assert resolved.corrupted_workers(5) == {2: 10.0}
        assert resolved.slow_factor(5, 0) == 4.0
        assert resolved.slow_factor(5, 1) == 1.0
        assert resolved.live_workers(2) == (0, 2)
        assert resolved.live_workers(4) == (0, 1, 2)

    def test_worker_bounds_checked_at_resolve(self):
        plan = FaultPlan(
            events=(FaultEvent(round=1, kind="drop_round", worker=7),), num_shards=1
        )
        with pytest.raises(ConfigurationError, match="worker 7"):
            plan.resolve(3)

    def test_shard_spec_fields_initial_spawn(self):
        resolved = plan_crash_rejoin().resolve(3)
        fields = resolved.shard_spec_fields(1)
        assert fields["start_step"] == 0
        assert fields["fail_step"] == 2 and fields["fail_mode"] == "die"
        assert fields["slow_steps"] == ()
        # Shard 0 owns worker 0's slow event and never departs.
        fields = resolved.shard_spec_fields(0)
        assert fields["fail_step"] is None
        assert fields["slow_steps"] == ((5, 4.0),)

    def test_shard_spec_fields_respawn_skips_past_outages(self):
        resolved = plan_crash_rejoin().resolve(3)
        fields = resolved.shard_spec_fields(1, start_round=4)
        assert fields["start_step"] == 3  # fast-forward rounds 1..3
        assert fields["fail_step"] is None  # no further outage scheduled
        with pytest.raises(ConfigurationError, match="unknown shard"):
            resolved.shard_spec_fields(9)


class TestSampling:
    def test_deterministic_in_the_seed(self):
        kwargs = dict(
            num_rounds=20, num_workers=6, num_shards=3,
            crash_rate=0.2, hang_rate=0.1, rejoin_after=2,
            drop_rate=0.1, corrupt_rate=0.05, slow_rate=0.05,
        )
        first = sample_fault_plan(SeedTree(9).generator("faults"), **kwargs)
        second = sample_fault_plan(SeedTree(9).generator("faults"), **kwargs)
        assert first == second
        other = sample_fault_plan(SeedTree(10).generator("faults"), **kwargs)
        assert first != other  # overwhelmingly likely at these rates

    def test_never_empties_the_cohort(self):
        plan = sample_fault_plan(
            SeedTree(3).generator("faults"),
            num_rounds=30, num_workers=4, num_shards=2, crash_rate=0.9,
        )
        resolved = plan.resolve(4)
        for round_index in range(1, 31):
            assert resolved.live_workers(round_index)

    def test_rejoin_after_reopens_the_shard(self):
        plan = sample_fault_plan(
            SeedTree(3).generator("faults"),
            num_rounds=30, num_workers=4, num_shards=2,
            crash_rate=0.5, rejoin_after=2,
        )
        outages = plan.resolve(4).shard_outages(0)
        assert outages  # crash_rate=0.5 over 30 rounds: some outage fired
        for outage in outages:
            if outage.start + 2 <= 30:
                assert outage.rejoin == outage.start + 2
            else:  # rejoin would land past the horizon: stays down
                assert outage.rejoin is None

    def test_rate_validation(self):
        rng = SeedTree(0).generator("faults")
        with pytest.raises(ConfigurationError, match="crash_rate"):
            sample_fault_plan(rng, num_rounds=2, num_workers=2, crash_rate=1.5)
        with pytest.raises(ConfigurationError, match="rejoin_after"):
            sample_fault_plan(rng, num_rounds=2, num_workers=2, rejoin_after=0)
        with pytest.raises(ConfigurationError, match="num_rounds"):
            sample_fault_plan(rng, num_rounds=0, num_workers=2)


class TestBuildFaultPlan:
    def test_passthrough_and_schedule(self):
        plan = plan_crash_rejoin()
        seeds = SeedTree(1)
        built = build_fault_plan(plan, num_rounds=8, num_workers=3, seeds=seeds)
        assert built is plan
        from_dict = build_fault_plan(
            plan.to_dict(), num_rounds=8, num_workers=3, seeds=seeds
        )
        assert from_dict == plan

    def test_name_defaults(self):
        seeds = SeedTree(1)
        # "events" present -> schedule; bare string -> the named model.
        scheduled = build_fault_plan(
            {"events": [], "num_shards": 2}, num_rounds=4, num_workers=4, seeds=seeds
        )
        assert scheduled == FaultPlan(num_shards=2)
        sampled = build_fault_plan(
            "random", num_rounds=4, num_workers=4, seeds=seeds
        )
        assert isinstance(sampled, FaultPlan)

    def test_random_model_draws_from_the_faults_path(self):
        seeds = SeedTree(5)
        spec = {"name": "random", "crash_rate": 0.3, "num_shards": 2,
                "rejoin_after": 1}
        built = build_fault_plan(spec, num_rounds=15, num_workers=4, seeds=seeds)
        direct = sample_fault_plan(
            SeedTree(5).generator("faults"),
            num_rounds=15, num_workers=4, num_shards=2,
            crash_rate=0.3, rejoin_after=1,
        )
        assert built == direct

    def test_unknown_names_and_fields_rejected(self):
        seeds = SeedTree(1)
        with pytest.raises(ConfigurationError, match="unknown fault model"):
            build_fault_plan("chaotic", num_rounds=2, num_workers=2, seeds=seeds)
        with pytest.raises(ConfigurationError, match="unknown random fault"):
            build_fault_plan(
                {"name": "random", "bogus": 1},
                num_rounds=2, num_workers=2, seeds=seeds,
            )
        with pytest.raises(ConfigurationError, match="faults must be"):
            build_fault_plan(42, num_rounds=2, num_workers=2, seeds=seeds)
