"""Unit tests for scenario-matrix expansion (repro.campaign.matrix)."""

import json

import pytest

from repro.campaign.matrix import (
    CampaignCell,
    ScenarioMatrix,
    derive_cell_seeds,
    expand_matrix,
)
from repro.exceptions import ConfigurationError

BASE = {
    "num_steps": 4,
    "n": 5,
    "f": 2,
    "batch_size": 8,
    "eval_every": 2,
    "seeds": [1],
}


def document(**overrides):
    payload = {
        "name": "unit",
        "base": dict(BASE),
        "axes": {"gar": ["mda", "median"], "epsilon": [None, 0.5]},
    }
    payload.update(overrides)
    return payload


class TestExpansion:
    def test_cartesian_order_last_axis_fastest(self):
        cells = expand_matrix(document())
        assert [cell.name for cell in cells] == [
            "gar=mda,epsilon=none",
            "gar=mda,epsilon=0.5",
            "gar=median,epsilon=none",
            "gar=median,epsilon=0.5",
        ]
        assert [cell.config.gar for cell in cells] == ["mda", "mda", "median", "median"]
        assert [cell.config.epsilon for cell in cells] == [None, 0.5, None, 0.5]

    def test_base_fields_shared(self):
        for cell in expand_matrix(document()):
            assert cell.config.num_steps == 4
            assert cell.config.seeds == (1,)
            assert cell.mode == "train"

    def test_name_template(self):
        cells = expand_matrix(document(name_template="{gar}|eps={epsilon}"))
        assert cells[0].name == "mda|eps=none"
        assert cells[-1].name == "median|eps=0.5"

    def test_name_template_unknown_field(self):
        with pytest.raises(ConfigurationError, match="name_template"):
            expand_matrix(document(name_template="{nonexistent}"))

    def test_exclude_drops_matching_cells(self):
        cells = expand_matrix(document(exclude=[{"gar": "median", "epsilon": None}]))
        assert len(cells) == 3
        assert "gar=median,epsilon=none" not in {cell.name for cell in cells}

    def test_exclude_matches_base_fields_too(self):
        cells = expand_matrix(document(exclude=[{"batch_size": 8, "gar": "mda"}]))
        assert [cell.config.gar for cell in cells] == ["median", "median"]

    def test_include_appended_and_exempt_from_exclude(self):
        cells = expand_matrix(
            document(
                exclude=[{"gar": "mda"}],
                include=[{"name": "extra", "gar": "mda", "epsilon": 0.9}],
            )
        )
        assert [cell.name for cell in cells][-1] == "extra"
        assert cells[-1].config.epsilon == 0.9
        assert all(cell.config.gar == "median" for cell in cells[:-1])

    def test_include_requires_name(self):
        with pytest.raises(ConfigurationError, match="needs a 'name'"):
            expand_matrix(document(include=[{"gar": "krum"}]))

    def test_mode_global_axis_and_cell(self):
        cells = expand_matrix(
            document(
                mode="simulate",
                include=[{"name": "sync-one", "mode": "train"}],
            )
        )
        assert {cell.mode for cell in cells[:-1]} == {"simulate"}
        assert cells[-1].mode == "train"
        axis_cells = expand_matrix(
            {
                "name": "axis-mode",
                "base": dict(BASE),
                "axes": {"mode": ["train", "simulate"]},
            }
        )
        assert [cell.mode for cell in axis_cells] == ["train", "simulate"]

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="mode"):
            expand_matrix(document(mode="warp"))

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            expand_matrix(document(name_template="same-for-all"))

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown matrix keys"):
            expand_matrix(document(grids=[1]))

    def test_malformed_exclude_rejected(self):
        # An easy JSON mistake: an object instead of a list of objects.
        with pytest.raises(ConfigurationError, match="exclude"):
            expand_matrix(document(exclude={"gar": "mda"}))
        with pytest.raises(ConfigurationError, match="exclude"):
            expand_matrix(document(exclude=["gar"]))

    def test_malformed_include_rejected(self):
        with pytest.raises(ConfigurationError, match="include"):
            expand_matrix(document(include={"name": "x"}))

    def test_empty_matrix_rejected(self):
        with pytest.raises(ConfigurationError, match="zero cells"):
            expand_matrix({"name": "empty", "base": dict(BASE)})

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            expand_matrix(document(axes={"gar": []}))

    def test_invalid_config_field_surfaces(self):
        bad = document()
        bad["base"]["num_steps"] = 0
        with pytest.raises(ConfigurationError, match="num_steps"):
            expand_matrix(bad)

    def test_axes_only_includes(self):
        cells = expand_matrix(
            {
                "name": "includes-only",
                "base": dict(BASE),
                "include": [{"name": "only", "gar": "krum"}],
            }
        )
        assert [cell.name for cell in cells] == ["only"]


class TestSeedDerivation:
    def test_deterministic_and_distinct(self):
        first = derive_cell_seeds(7, "cell-a", 5)
        second = derive_cell_seeds(7, "cell-a", 5)
        assert first == second
        assert len(set(first)) == 5

    def test_prefix_stable(self):
        assert derive_cell_seeds(7, "cell-a", 3) == derive_cell_seeds(7, "cell-a", 5)[:3]

    def test_varies_with_cell_and_root(self):
        assert derive_cell_seeds(7, "cell-a", 3) != derive_cell_seeds(7, "cell-b", 3)
        assert derive_cell_seeds(7, "cell-a", 3) != derive_cell_seeds(8, "cell-a", 3)

    def test_count_validated(self):
        with pytest.raises(ConfigurationError, match="count"):
            derive_cell_seeds(7, "cell-a", 0)

    def test_matrix_seed_rule_fills_cells(self):
        base = {key: value for key, value in BASE.items() if key != "seeds"}
        cells = expand_matrix(
            {
                "name": "derived",
                "base": base,
                "axes": {"gar": ["mda", "median"]},
                "seeds": {"count": 2, "root": 11},
            }
        )
        for cell in cells:
            assert len(cell.config.seeds) == 2
            assert cell.config.seeds == derive_cell_seeds(11, cell.name, 2)
        assert cells[0].config.seeds != cells[1].config.seeds

    def test_matrix_seed_list_is_base_shorthand(self):
        base = {key: value for key, value in BASE.items() if key != "seeds"}
        cells = expand_matrix(
            {
                "name": "listed",
                "base": base,
                "axes": {"gar": ["mda"]},
                "seeds": [3, 4],
            }
        )
        assert cells[0].config.seeds == (3, 4)

    def test_explicit_cell_seeds_win_over_rule(self):
        cells = expand_matrix(
            {
                "name": "explicit",
                "base": dict(BASE),  # base carries seeds = [1]
                "axes": {"gar": ["mda"]},
                "seeds": {"count": 4, "root": 0},
            }
        )
        assert cells[0].config.seeds == (1,)

    def test_bad_seed_rules_rejected(self):
        for rule in ({"count": 0}, {"count": "three"}, {"bogus": 1}, "all"):
            with pytest.raises(ConfigurationError):
                expand_matrix(document(seeds=rule))


class TestScenarioMatrix:
    def test_from_dict_carries_environment(self):
        matrix = ScenarioMatrix.from_dict(
            document(model={"name": "logistic"}, data_seed=3, report={"rows": "gar"})
        )
        assert matrix.name == "unit"
        assert matrix.model_spec == {"name": "logistic"}
        assert matrix.data_seed == 3
        assert matrix.report_spec == {"rows": "gar"}
        assert len(matrix) == 4
        assert matrix.total_runs == 4  # one seed per cell

    def test_from_file(self, tmp_path):
        path = tmp_path / "matrix.json"
        path.write_text(json.dumps(document()))
        matrix = ScenarioMatrix.from_file(path)
        assert len(matrix.cells) == 4

    def test_smoke_trims_and_keeps_modes(self):
        base = dict(BASE, num_steps=100, eval_every=50, seeds=[1, 2, 3])
        matrix = ScenarioMatrix.from_dict(document(base=base, mode="simulate"))
        smoke = matrix.smoke()
        for cell in smoke.cells:
            assert cell.config.num_steps == 5
            assert cell.config.eval_every == 5
            assert cell.config.seeds == (1,)
            assert cell.mode == "simulate"
        # The original is untouched (configs are frozen dataclasses).
        assert matrix.cells[0].config.num_steps == 100

    def test_axis_values_in_cell_order(self):
        matrix = ScenarioMatrix.from_dict(document())
        assert matrix.axis_values("gar") == ["mda", "median"]
        assert matrix.axis_values("epsilon") == [None, 0.5]

    def test_cell_rejects_bad_mode(self):
        from repro.experiments.config import ExperimentConfig

        config = ExperimentConfig(name="x", **{k: v for k, v in BASE.items() if k != "seeds"})
        with pytest.raises(ConfigurationError, match="mode"):
            CampaignCell(config=config, mode="bogus")
