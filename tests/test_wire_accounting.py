"""Bytes-on-wire accounting: exact counts, telemetry flow, store identity.

Four layers:

* **Analytic counts** — every codec's reported byte totals over a full
  run equal the documented closed forms (``rounds × n × per-message
  bytes``); the data-dependent discrete-Gaussian payload is checked by
  recomputing its width from the encoded row itself.
* **Per-step results** — ``StepResult.bytes_on_wire`` carries the
  per-round total on every execution path and sums to the cluster's
  running total; raw-wire runs report ``None`` everywhere.
* **Telemetry** — the ``wire.bytes`` counter accumulates exactly the
  run's byte total, on the engine, instrumented-cluster and simulator
  paths alike, and stays absent when no codec is configured.
* **Campaign store** — ``codec``/``codec_kwargs`` are part of the
  content-addressed cell key (a lossy codec changes the numbers) while
  the *measured* ``bytes_on_wire`` lives only in the record; execution
  backend fields stay excluded.
"""

import math

import numpy as np
import pytest

from repro.campaign.runner import CellJob, execute_cell
from repro.campaign.store import cell_key
from repro.compression import DiscreteGaussianCodec
from repro.data.phishing import make_phishing_dataset
from repro.experiments.config import ExperimentConfig
from repro.models.logistic import LogisticRegressionModel
from repro.pipeline.builder import Experiment
from repro.telemetry import MemorySink, Telemetry

N = 9
F = 3
D = 11  # 10 features + bias
ROUNDS = 4

#: codec name -> exact bytes of one encoded d=11 message.
PER_MESSAGE_BYTES = {
    "identity": 8 * D,
    "top-k": 12 * math.ceil(0.125 * D),  # default fraction 0.125 -> k=2
    "sign": math.ceil(D / 8) + 8,
    "qsgd": 8 + math.ceil(6 * D / 8),  # levels=16 -> 6 bits/coordinate
}


def _experiment(codec=None, **overrides):
    settings = dict(
        model=LogisticRegressionModel(10),
        train_dataset=make_phishing_dataset(seed=0, num_points=200, num_features=10),
        num_steps=ROUNDS,
        n=N,
        f=F,
        gar="krum",
        attack="little",
        epsilon=0.5,
        batch_size=10,
        eval_every=2,
        seed=3,
        codec=codec,
    )
    settings.update(overrides)
    return Experiment(**settings)


class TestAnalyticCounts:
    @pytest.mark.parametrize("codec", sorted(PER_MESSAGE_BYTES))
    def test_run_total_matches_closed_form(self, codec):
        """All n messages (honest and Byzantine) are accounted each round."""
        result = _experiment(codec=codec).run()
        assert result.bytes_on_wire == ROUNDS * N * PER_MESSAGE_BYTES[codec]

    @pytest.mark.parametrize("codec", sorted(PER_MESSAGE_BYTES))
    def test_per_step_counts_match_closed_form(self, codec):
        cluster = _experiment(codec=codec).build_cluster()
        for _ in range(ROUNDS):
            outcome = cluster.step()
            assert outcome.bytes_on_wire == N * PER_MESSAGE_BYTES[codec]
        assert cluster.bytes_on_wire_total == ROUNDS * N * PER_MESSAGE_BYTES[codec]

    def test_discrete_gaussian_bytes_recomputable_from_the_wire(self):
        """The data-dependent payload width follows from the row itself."""
        granularity = 1.0 / 128
        codec = DiscreteGaussianCodec(granularity=granularity, sigma=2.0, seed=17)
        rng = np.random.default_rng(0)
        for step in range(3):
            vector = rng.normal(scale=0.01, size=23)
            wire, nbytes = codec.encode_row(vector, step, worker=step)
            levels = np.rint(wire / granularity).astype(np.int64)
            assert np.allclose(levels * granularity, wire)
            bits = max(1, int(np.abs(levels).max()).bit_length() + 1)
            assert nbytes == 8 + math.ceil(23 * bits / 8)

    def test_raw_wire_reports_none(self):
        result = _experiment().run()
        assert result.bytes_on_wire is None
        cluster = _experiment().build_cluster()
        assert cluster.step().bytes_on_wire is None
        assert cluster.bytes_on_wire_total == 0


class TestStepResultsAcrossPaths:
    def test_multiprocess_step_results_carry_bytes(self):
        expected = N * PER_MESSAGE_BYTES["sign"]
        experiment = _experiment(codec="sign", backend="multiprocess", num_shards=2)
        with experiment.build_multiprocess_cluster() as runtime:
            for _ in range(2):
                assert runtime.step().bytes_on_wire == expected
            assert runtime.bytes_on_wire_total == 2 * expected

    def test_simulator_accumulates_per_round(self):
        result = _experiment(codec="top-k").simulate()
        assert result.bytes_on_wire == ROUNDS * N * PER_MESSAGE_BYTES["top-k"]


class TestTelemetryFlow:
    def _counter_total(self, telemetry):
        return telemetry.metrics.counter_values().get("wire.bytes")

    def test_engine_path_emits_wire_bytes(self):
        telemetry = Telemetry(sinks=[MemorySink()])
        result = _experiment(codec="sign", telemetry=telemetry).run()
        assert self._counter_total(telemetry) == result.bytes_on_wire

    def test_instrumented_cluster_emits_per_step(self):
        telemetry = Telemetry(sinks=[MemorySink()])
        cluster = _experiment(codec="qsgd").build_cluster()
        cluster.telemetry = telemetry
        outcome = cluster.step()
        assert self._counter_total(telemetry) == outcome.bytes_on_wire

    def test_simulator_emits_wire_bytes(self):
        telemetry = Telemetry(sinks=[MemorySink()])
        result = _experiment(codec="top-k", telemetry=telemetry).simulate()
        assert self._counter_total(telemetry) == result.bytes_on_wire

    def test_no_codec_means_no_counter(self):
        telemetry = Telemetry(sinks=[MemorySink()])
        _experiment(telemetry=telemetry).run()
        assert self._counter_total(telemetry) is None


def _config(**overrides):
    settings = dict(
        name="cell",
        num_steps=2,
        n=5,
        f=1,
        gar="krum",
        attack="little",
        batch_size=10,
        eval_every=2,
        seeds=(3,),
    )
    settings.update(overrides)
    return ExperimentConfig(**settings)


class TestStoreIdentity:
    def test_codec_is_part_of_the_cell_key(self):
        raw = cell_key(_config(), seed=3)
        compressed = cell_key(_config(codec="sign"), seed=3)
        identity = cell_key(_config(codec="identity"), seed=3)
        assert len({raw, compressed, identity}) == 3

    def test_codec_kwargs_order_does_not_matter(self):
        forward = _config(codec="top-k", codec_kwargs=(("k", 2), ("seed", 5)))
        backward = _config(codec="top-k", codec_kwargs=(("seed", 5), ("k", 2)))
        assert cell_key(forward, seed=3) == cell_key(backward, seed=3)

    def test_backend_fields_stay_excluded(self):
        inprocess = _config(codec="sign")
        multiprocess = _config(codec="sign", backend="multiprocess", num_shards=2)
        assert cell_key(inprocess, seed=3) == cell_key(multiprocess, seed=3)

    def _job(self, config, mode="train"):
        return CellJob(
            key=cell_key(config, seed=3, mode=mode),
            name=config.name,
            seed=3,
            mode=mode,
            config=config,
            model=LogisticRegressionModel(10),
            train_dataset=make_phishing_dataset(
                seed=0, num_points=120, num_features=10
            ),
            test_dataset=None,
        )

    def test_record_carries_measured_bytes_not_the_key(self):
        config = _config(codec="sign")
        record = execute_cell(self._job(config))
        assert record["bytes_on_wire"] == 2 * 5 * PER_MESSAGE_BYTES["sign"]
        assert record["config"]["codec"] == "sign"

    def test_simulate_record_carries_bytes(self):
        config = _config(codec="sign")
        record = execute_cell(self._job(config, mode="simulate"))
        assert record["bytes_on_wire"] == 2 * 5 * PER_MESSAGE_BYTES["sign"]

    def test_raw_record_reports_null(self):
        record = execute_cell(self._job(_config()))
        assert record["bytes_on_wire"] is None
