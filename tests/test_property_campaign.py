"""Hypothesis property tests for matrix expansion and store semantics."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign.matrix import expand_matrix
from repro.campaign.store import ResultStore, cell_key
from repro.experiments.config import ExperimentConfig

BASE = {
    "num_steps": 4,
    "n": 5,
    "f": 2,
    "batch_size": 8,
    "eval_every": 2,
    "seeds": [1],
}

#: Axis pools: each axis name with the values it may legally take.
AXIS_POOLS = {
    "gar": ["mda", "median", "krum", "average", "trimmed-mean"],
    "epsilon": [None, 0.2, 0.5, 1.0],
    "batch_size": [4, 8, 16, 50],
    "momentum": [0.0, 0.9, 0.99],
    "learning_rate": [0.5, 1.0, 2.0],
}


@st.composite
def axes_documents(draw):
    """A random matrix document plus its exclusion bookkeeping."""
    axis_names = draw(
        st.lists(st.sampled_from(sorted(AXIS_POOLS)), min_size=1, max_size=3, unique=True)
    )
    axes = {}
    for axis in axis_names:
        pool = AXIS_POOLS[axis]
        size = draw(st.integers(1, min(3, len(pool))))
        axes[axis] = pool[:size]
    # Excludes are full axis assignments drawn from the product, so each
    # pattern matches exactly one grid cell.
    product_size = 1
    for values in axes.values():
        product_size *= len(values)
    num_excluded = draw(st.integers(0, max(0, product_size - 1)))
    excluded_indices = draw(
        st.lists(
            st.integers(0, product_size - 1),
            min_size=num_excluded,
            max_size=num_excluded,
            unique=True,
        )
    )
    excludes = []
    for flat_index in excluded_indices:
        assignment = {}
        remainder = flat_index
        for axis in reversed(list(axes)):
            remainder, position = divmod(remainder, len(axes[axis]))
            assignment[axis] = axes[axis][position]
        excludes.append(assignment)
    document = {"name": "prop", "base": dict(BASE), "axes": axes, "exclude": excludes}
    return document, product_size, len(excluded_indices)


class TestExpansionProperties:
    @given(axes_documents())
    @settings(max_examples=60, deadline=None)
    def test_deterministic_and_order_stable(self, case):
        document, _, _ = case
        first = expand_matrix(document)
        second = expand_matrix(json.loads(json.dumps(document)))  # JSON round-trip
        assert [cell.name for cell in first] == [cell.name for cell in second]
        assert [cell.config for cell in first] == [cell.config for cell in second]
        assert [cell.mode for cell in first] == [cell.mode for cell in second]

    @given(axes_documents())
    @settings(max_examples=60, deadline=None)
    def test_cell_count_is_product_minus_exclusions(self, case):
        document, product_size, num_excluded = case
        if product_size == num_excluded:
            return  # empty expansion rejected; covered by the unit suite
        assert len(expand_matrix(document)) == product_size - num_excluded

    @given(axes_documents(), st.randoms())
    @settings(max_examples=30, deadline=None)
    def test_exclude_order_never_reorders_survivors(self, case, random):
        document, product_size, num_excluded = case
        if product_size == num_excluded:
            return
        shuffled = dict(document)
        shuffled["exclude"] = list(document["exclude"])
        random.shuffle(shuffled["exclude"])
        assert [cell.name for cell in expand_matrix(document)] == [
            cell.name for cell in expand_matrix(shuffled)
        ]

    @given(axes_documents())
    @settings(max_examples=30, deadline=None)
    def test_every_cell_name_unique_and_config_valid(self, case):
        document, _, num_excluded = case
        if num_excluded == case[1]:
            return
        cells = expand_matrix(document)
        names = [cell.name for cell in cells]
        assert len(set(names)) == len(names)
        for cell in cells:
            assert isinstance(cell.config, ExperimentConfig)


#: (field, values) pairs for key-injectivity mutations — every value
#: pair within a field must map to distinct keys.
MUTATIONS = {
    "num_steps": [1, 4, 100],
    "n": [5, 7, 11],
    "f": [0, 2],
    "gar": ["mda", "median", "krum"],
    "attack": [None, "little", "empire"],
    "batch_size": [4, 8, 50],
    "g_max": [1e-2, 1e-1],
    "epsilon": [None, 0.2, 0.5],
    "delta": [1e-6, 1e-5],
    "noise_kind": ["gaussian", "laplace"],
    "learning_rate": [0.5, 2.0],
    "momentum": [0.0, 0.99],
    "momentum_at": ["worker", "server"],
    "clip_mode": ["batch", "sample"],
    "drop_probability": [0.0, 0.1],
    "eval_every": [2, 50],
    "policy": ["sync", "semi-sync", "async-staleness"],
    "latency": [None, "constant", "lognormal"],
    "participation_rate": [1.0, 0.5],
    "participation_kind": ["poisson", "uniform"],
}


def base_config(**overrides):
    payload = dict(BASE, name="cell")
    payload["seeds"] = tuple(payload["seeds"])
    payload.update(overrides)
    return ExperimentConfig(**payload)


class TestKeyInjectivity:
    @given(
        st.sampled_from(sorted(MUTATIONS)),
        st.data(),
    )
    @settings(max_examples=120, deadline=None)
    def test_differing_configs_get_differing_keys(self, field, data):
        values = MUTATIONS[field]
        old = data.draw(st.sampled_from(values))
        new = data.draw(st.sampled_from([value for value in values if value != old]))
        assert cell_key(base_config(**{field: old}), 1) != cell_key(
            base_config(**{field: new}), 1
        )

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_same_config_same_key(self, seed):
        assert cell_key(base_config(), seed) == cell_key(base_config(), seed)

    @given(st.integers(0, 1000), st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_distinct_seeds_distinct_keys(self, first, second):
        if first == second:
            return
        assert cell_key(base_config(), first) != cell_key(base_config(), second)


class TestStoreProperties:
    @given(field=st.sampled_from(sorted(MUTATIONS)), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_mutated_config_never_cache_hits(self, tmp_path_factory, field, data):
        values = MUTATIONS[field]
        old = data.draw(st.sampled_from(values))
        new = data.draw(st.sampled_from([value for value in values if value != old]))
        store = ResultStore(tmp_path_factory.mktemp("store"))
        store.save(cell_key(base_config(**{field: old}), 1), {"cached": True})
        assert not store.has(cell_key(base_config(**{field: new}), 1))

    @given(
        record=st.dictionaries(
            st.text(
                alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=10
            ),
            st.one_of(
                st.none(),
                st.booleans(),
                st.integers(-1000, 1000),
                st.floats(allow_nan=False, allow_infinity=False, width=32),
                st.text(max_size=20),
            ),
            max_size=6,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_save_load_round_trip(self, tmp_path_factory, record):
        store = ResultStore(tmp_path_factory.mktemp("store"))
        key = cell_key(base_config(), 1)
        store.save(key, record)
        assert store.load(key) == record
