"""Sink and timing-primitive tests for the telemetry plane.

Sinks only serialise/store/forward finished event dicts; the timing
module is the one clock discipline shared by benchmarks and spans.
"""

import io
import json
import queue

from repro.telemetry import (
    JsonlSink,
    MemorySink,
    QueueSink,
    Sink,
    StderrProgressSink,
    Stopwatch,
    Telemetry,
    best_of_ns,
)


def sample_event(**overrides):
    event = {"kind": "mark", "src": "chief", "seq": 0, "step": 0, "name": "m"}
    event.update(overrides)
    return event


class TestJsonlSink:
    def test_writes_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        sink.emit(sample_event(seq=0))
        sink.emit(sample_event(seq=1))
        sink.close()
        lines = path.read_text().splitlines()
        assert [json.loads(line)["seq"] for line in lines] == [0, 1]

    def test_lazy_open_leaves_no_file_without_events(self, tmp_path):
        path = tmp_path / "never.jsonl"
        sink = JsonlSink(path)
        sink.flush()
        sink.close()
        assert not path.exists()
        assert sink.path == path

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "trace.jsonl"
        sink = JsonlSink(path)
        sink.emit(sample_event())
        sink.close()
        assert path.exists()

    def test_truncates_previous_run(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("stale line from the previous run\n")
        sink = JsonlSink(path)
        sink.emit(sample_event())
        sink.close()
        assert len(path.read_text().splitlines()) == 1

    def test_flush_makes_partial_trace_readable(self, tmp_path):
        """A crashed run's trace must be readable up to its last flush."""
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        sink.emit(sample_event())
        sink.flush()
        assert json.loads(path.read_text())["kind"] == "mark"
        sink.close()

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlSink(tmp_path / "trace.jsonl")
        sink.emit(sample_event())
        sink.close()
        sink.close()


class TestMemorySink:
    def test_by_kind_and_named_filters(self):
        sink = MemorySink()
        sink.emit(sample_event(kind="span", name="round.server", dur_ns=5))
        sink.emit(sample_event(kind="counter", name="rounds", value=1, delta=1))
        sink.emit(sample_event(kind="span", name="round.cohort", dur_ns=7))
        assert len(sink.by_kind("span")) == 2
        assert len(sink.named("rounds")) == 1
        assert sink.by_kind("gauge") == []


class TestQueueSink:
    def test_batches_only_on_flush(self):
        channel = queue.Queue()
        sink = QueueSink(channel)
        sink.emit(sample_event(seq=0))
        sink.emit(sample_event(seq=1))
        assert channel.empty()  # per-round IPC is one token, not two
        sink.flush()
        batch = channel.get_nowait()
        assert [event["seq"] for event in batch] == [0, 1]

    def test_flush_of_empty_buffer_sends_nothing(self):
        channel = queue.Queue()
        QueueSink(channel).flush()
        assert channel.empty()

    def test_telemetry_flush_drains_through(self):
        channel = queue.Queue()
        telemetry = Telemetry(sinks=[QueueSink(channel)], src="shard:0")
        telemetry.mark("shard.start")
        telemetry.flush()
        (event,) = channel.get_nowait()
        assert event["src"] == "shard:0"


class TestStderrProgressSink:
    def test_rate_limits_ordinary_events(self):
        stream = io.StringIO()
        sink = StderrProgressSink(interval=3600.0, stream=stream)
        for seq in range(5):
            sink.emit(sample_event(seq=seq, step=seq))
        # One line at most within the interval.
        assert len(stream.getvalue().splitlines()) == 1

    def test_warnings_always_print(self):
        stream = io.StringIO()
        sink = StderrProgressSink(interval=3600.0, stream=stream)
        sink.emit(sample_event())
        sink.emit(
            sample_event(kind="warning", name="shard.departed", message="shard 1 died")
        )
        text = stream.getvalue()
        assert "shard.departed" in text
        assert "shard 1 died" in text


class TestBaseSinkContract:
    def test_flush_and_close_default_to_noops(self):
        class Recording(Sink):
            def __init__(self):
                self.events = []

            def emit(self, event):
                self.events.append(event)

        sink = Recording()
        sink.flush()
        sink.close()
        sink.emit(sample_event())
        assert len(sink.events) == 1


class TestTimingPrimitives:
    def test_best_of_ns_returns_positive_minimum(self):
        calls = []
        result = best_of_ns(lambda: calls.append(1), repeats=3)
        assert result > 0
        assert len(calls) == 4  # warm-up + 3 timed

    def test_best_of_ns_clamps_repeats(self):
        calls = []
        best_of_ns(lambda: calls.append(1), repeats=0)
        assert len(calls) == 2  # warm-up + at least one timed call

    def test_stopwatch_restart_and_read(self):
        watch = Stopwatch()
        first = watch.elapsed_ns()
        assert first >= 0
        watch.restart()
        assert watch.elapsed_seconds() < 60.0
        assert watch.elapsed_ns() <= watch.elapsed_ns()
