"""Golden-trace and differential regression tests for compressed runs.

Three layers of evidence that the wire-compression pipeline is exact:

1. **Compressed golden traces** — seed-pinned short runs through a
   lossy codec (Krum + top-k, average + stochastic quantization) must
   reproduce the committed ``tests/golden/codec_traces.json`` bit for
   bit, byte totals included.  Regenerate after an intentional change::

       PYTHONPATH=src python -m pytest tests/test_golden_codecs.py --regen-golden

2. **Identity ≡ raw** — the identity codec replayed over the existing
   uncompressed golden cases (``tests/golden/traces.json``) must equal
   the committed traces exactly: inserting the codec stage with a
   lossless codec may not move a single bit anywhere in the pipeline.

3. **In-process ≡ multiprocess** — a codec-enabled experiment produces
   identical losses, byte totals and final parameters under both
   backends, pinning the shard-side row encoding against the chief-side
   whole-cohort encoding.

Equality is exact float equality everywhere; no tolerances.
"""

import json
from pathlib import Path

import pytest

from repro.data.phishing import make_phishing_dataset
from repro.models.logistic import LogisticRegressionModel
from repro.pipeline.builder import Experiment

from tests.test_golden_traces import CASES as RAW_CASES
from tests.test_golden_traces import GOLDEN_PATH as RAW_GOLDEN_PATH
from tests.test_golden_traces import _run_case as _run_raw_case

GOLDEN_PATH = Path(__file__).parent / "golden" / "codec_traces.json"

#: name -> Experiment overrides for the compressed golden cells.  Both
#: stochastic ingredients are exercised: top-k is deterministic but
#: data-dependent, qsgd draws per-message randomness from the
#: experiment seed tree.
CASES = {
    "krum-little-topk": dict(
        gar="krum", attack="little", n=9, f=3, epsilon=0.5, codec="top-k"
    ),
    "average-noattack-qsgd": dict(
        gar="average", attack=None, n=9, f=0, epsilon=0.5, codec="qsgd"
    ),
}


def _experiment(overrides: dict) -> Experiment:
    return Experiment(
        model=LogisticRegressionModel(10),
        train_dataset=make_phishing_dataset(seed=0, num_points=240, num_features=10),
        test_dataset=make_phishing_dataset(seed=1, num_points=60, num_features=10),
        num_steps=6,
        batch_size=10,
        eval_every=3,
        seed=7,
        **overrides,
    )


def _run_case(overrides: dict) -> dict:
    result = _experiment(overrides).run()
    return {
        "loss_steps": [int(step) for step in result.history.loss_steps],
        "losses": [float(loss) for loss in result.history.losses],
        "accuracy_steps": [int(step) for step in result.history.accuracy_steps],
        "accuracies": [float(acc) for acc in result.history.accuracies],
        "final_parameters": [float(value) for value in result.final_parameters],
        "bytes_on_wire": int(result.bytes_on_wire),
    }


@pytest.fixture(scope="module")
def golden():
    if not GOLDEN_PATH.exists():
        pytest.fail(
            f"missing golden fixture {GOLDEN_PATH}; record it with "
            "--regen-golden"
        )
    return json.loads(GOLDEN_PATH.read_text())


def test_regen_golden(request):
    """Not a test of behaviour: rewrites the fixture when asked to."""
    if not request.config.getoption("--regen-golden"):
        pytest.skip("pass --regen-golden to re-record the codec traces")
    traces = {name: _run_case(overrides) for name, overrides in CASES.items()}
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(traces, indent=2) + "\n")


@pytest.mark.parametrize("name", sorted(CASES))
def test_compressed_trace_bit_identical(name, golden, request):
    if request.config.getoption("--regen-golden"):
        pytest.skip("regenerating, not asserting")
    assert name in golden, f"no golden trace for {name}; run --regen-golden"
    expected = golden[name]
    actual = _run_case(CASES[name])
    assert actual["loss_steps"] == expected["loss_steps"]
    assert actual["accuracy_steps"] == expected["accuracy_steps"]
    assert actual["losses"] == expected["losses"]
    assert actual["accuracies"] == expected["accuracies"]
    assert actual["final_parameters"] == expected["final_parameters"]
    assert actual["bytes_on_wire"] == expected["bytes_on_wire"]


def test_golden_covers_all_cases(golden):
    assert set(golden) == set(CASES)


@pytest.mark.parametrize("name", sorted(RAW_CASES))
def test_identity_codec_matches_committed_raw_traces(name):
    """Identity-compressed runs must replay the *uncompressed* goldens.

    The strongest statement of losslessness available: the committed
    ``traces.json`` was recorded with no codec stage at all, so
    equality here proves the inserted encode step (buffer handling,
    ordering, telemetry accounting) is numerically invisible.
    """
    committed = json.loads(RAW_GOLDEN_PATH.read_text())[name]
    actual = _run_raw_case({**RAW_CASES[name], "codec": "identity"})
    assert actual["losses"] == committed["losses"]
    assert actual["accuracies"] == committed["accuracies"]
    assert actual["final_parameters"] == committed["final_parameters"]


@pytest.mark.parametrize("name", sorted(CASES))
def test_compressed_run_bit_identical_across_backends(name):
    """In-process and multiprocess agree on every compressed number."""
    inprocess = _experiment(CASES[name]).run()
    multiprocess = _experiment(
        {**CASES[name], "backend": "multiprocess", "num_shards": 3}
    ).run()
    assert (
        multiprocess.history.losses.tolist() == inprocess.history.losses.tolist()
    )
    assert (
        multiprocess.history.accuracies.tolist()
        == inprocess.history.accuracies.tolist()
    )
    assert (
        multiprocess.final_parameters.tolist()
        == inprocess.final_parameters.tolist()
    )
    assert multiprocess.bytes_on_wire == inprocess.bytes_on_wire


@pytest.mark.parametrize("name", sorted(CASES))
def test_compressed_run_bit_identical_on_simulator(name):
    """The zero-latency sync simulator replays compressed runs exactly."""
    trained = _experiment(CASES[name]).run()
    simulated = _experiment(CASES[name]).simulate()
    assert simulated.history.losses.tolist() == trained.history.losses.tolist()
    assert (
        simulated.final_parameters.tolist() == trained.final_parameters.tolist()
    )
    assert simulated.bytes_on_wire == trained.bytes_on_wire
