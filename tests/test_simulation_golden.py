"""Golden traces for the discrete-event simulator.

Two guarantees are pinned here:

1. **Sync equivalence** — the simulator under ``SyncPolicy``, zero
   latency and full participation must replay the *existing* golden
   traces (``tests/golden/traces.json``, recorded through the
   synchronous ``train()`` path) bit-identically: same losses, same
   accuracies, same final parameters, for every case including the
   lossy-network one.  This proves the event engine is a strict
   generalisation of the paper's Section 2.1 protocol, not a parallel
   implementation that merely resembles it.

2. **Async scenarios** — seed-pinned traces for the genuinely
   asynchronous regimes (straggler latency under semi-sync and
   async-staleness policies, partial participation) live in
   ``tests/golden/simulation_traces.json``.  Regenerate after an
   intentional change with::

       PYTHONPATH=src python -m pytest tests/test_simulation_golden.py --regen-golden
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.data.phishing import make_phishing_dataset
from repro.models.logistic import LogisticRegressionModel
from repro.pipeline.builder import Experiment

from tests.test_golden_traces import CASES as SYNC_CASES
from tests.test_golden_traces import GOLDEN_PATH as SYNC_GOLDEN_PATH

SIM_GOLDEN_PATH = Path(__file__).parent / "golden" / "simulation_traces.json"

#: name -> Experiment keyword overrides for the async golden scenarios.
#: Each exercises a different policy x latency x participation corner:
#: a K-of-n barrier with two fixed stragglers, a fully asynchronous
#: staleness-damped run on lognormal delays, and a Poisson-subsampled
#: barrier whose drops and sampling must replay identically.
SIM_CASES = {
    "semisync-straggler-little-gaussian": dict(
        gar="mda",
        attack="little",
        epsilon=0.5,
        n=9,
        f=3,
        policy={"name": "semi-sync", "buffer_size": 4},
        latency={
            "name": "straggler",
            "base": 1.0,
            "slowdown": 4.0,
            "straggler_probability": 0.0,
            "straggler_workers": [1, 2],
        },
    ),
    # Coordinate-wise GAR on purpose: a selection GAR (krum) under an
    # async zero-filled cache keeps electing the central zero row until
    # every worker has reported, which makes for a degenerate trace.
    "asyncstale-lognormal-signflip-nodp": dict(
        gar="trimmed-mean",
        attack="signflip",
        n=9,
        f=3,
        # Long enough for the latest-gradient cache to mostly fill.
        num_steps=14,
        policy={"name": "async-staleness", "damping": "inverse"},
        latency={"name": "lognormal", "median": 1.0, "sigma": 0.8},
    ),
    "sync-poisson-participation-lossy": dict(
        gar="median",
        attack="empire",
        n=9,
        f=4,
        drop_probability=0.2,
        participation_rate=0.7,
        participation_kind="poisson",
    ),
}


def _environment():
    return (
        LogisticRegressionModel(10),
        make_phishing_dataset(seed=0, num_points=240, num_features=10),
        make_phishing_dataset(seed=1, num_points=60, num_features=10),
    )


def _build_experiment(overrides: dict) -> Experiment:
    model, train_set, test_set = _environment()
    return Experiment(
        model=model,
        train_dataset=train_set,
        test_dataset=test_set,
        batch_size=10,
        eval_every=3,
        seed=7,
        **{"num_steps": 6, **overrides},
    )


def _simulate_case(overrides: dict) -> dict:
    result = _build_experiment(overrides).simulate()
    return {
        "loss_steps": [int(step) for step in result.history.loss_steps],
        "losses": [float(loss) for loss in result.history.losses],
        "accuracy_steps": [int(step) for step in result.history.accuracy_steps],
        "accuracies": [float(acc) for acc in result.history.accuracies],
        "final_parameters": [float(value) for value in result.final_parameters],
        "virtual_times": [float(time) for time in result.history.virtual_times],
        "rounds": int(result.rounds),
    }


class TestSyncEquivalence:
    """Zero latency + full participation + SyncPolicy == ``train()``."""

    @pytest.mark.parametrize("name", sorted(SYNC_CASES))
    def test_replays_training_golden_trace(self, name):
        golden = json.loads(SYNC_GOLDEN_PATH.read_text())
        assert name in golden, f"missing golden trace for {name}"
        expected = golden[name]
        result = _build_experiment(SYNC_CASES[name]).simulate()
        # Bit-identical: exact float equality, not allclose.
        assert [int(s) for s in result.history.loss_steps] == expected["loss_steps"]
        assert [float(l) for l in result.history.losses] == expected["losses"]
        assert [float(a) for a in result.history.accuracies] == expected["accuracies"]
        assert (
            [float(v) for v in result.final_parameters]
            == expected["final_parameters"]
        )

    def test_sync_simulation_matches_run_exactly(self):
        """Belt and braces: simulate() == run() on a fresh case too."""
        overrides = dict(gar="trimmed-mean", attack="little", n=7, f=2, epsilon=0.3)
        trained = _build_experiment(overrides).run()
        simulated = _build_experiment(overrides).simulate()
        assert list(trained.history.losses) == list(simulated.history.losses)
        assert list(trained.history.accuracies) == list(simulated.history.accuracies)
        assert list(trained.final_parameters) == list(simulated.final_parameters)

    def test_zero_latency_clock_stays_at_zero(self):
        result = _build_experiment(dict(gar="average", f=0, n=6)).simulate()
        assert np.all(result.history.virtual_times == 0.0)


@pytest.fixture(scope="module")
def sim_golden():
    if not SIM_GOLDEN_PATH.exists():
        pytest.fail(
            f"missing golden fixture {SIM_GOLDEN_PATH}; record it with --regen-golden"
        )
    return json.loads(SIM_GOLDEN_PATH.read_text())


def test_regen_simulation_golden(request):
    """Not a test of behaviour: rewrites the fixture when asked to."""
    if not request.config.getoption("--regen-golden"):
        pytest.skip("pass --regen-golden to re-record the simulation traces")
    traces = {name: _simulate_case(overrides) for name, overrides in SIM_CASES.items()}
    SIM_GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    SIM_GOLDEN_PATH.write_text(json.dumps(traces, indent=2) + "\n")


@pytest.mark.parametrize("name", sorted(SIM_CASES))
def test_simulation_trace_bit_identical(name, sim_golden, request):
    if request.config.getoption("--regen-golden"):
        pytest.skip("regenerating, not asserting")
    assert name in sim_golden, f"no golden trace for {name}; run --regen-golden"
    expected = sim_golden[name]
    actual = _simulate_case(SIM_CASES[name])
    assert actual == expected  # bit-identical floats via repr round-trip


def test_simulation_golden_covers_all_cases(sim_golden):
    """The fixture and the case table must not drift apart."""
    assert sorted(sim_golden) == sorted(SIM_CASES)


def test_simulation_traces_are_nontrivial(sim_golden):
    """Guard against degenerate recordings: the async scenarios must
    actually exercise latency (a moving clock) and keep finite losses."""
    for name, trace in sim_golden.items():
        assert trace["losses"], name
        assert np.all(np.isfinite(trace["losses"])), name
        assert any(value != 0.0 for value in trace["final_parameters"]), name
    straggler = sim_golden["semisync-straggler-little-gaussian"]
    assert straggler["virtual_times"][-1] > 0.0
    async_trace = sim_golden["asyncstale-lognormal-signflip-nodp"]
    assert async_trace["rounds"] >= len(async_trace["losses"])
