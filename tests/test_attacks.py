"""Tests for the Byzantine attacks."""

import numpy as np
import pytest

from repro.attacks import (
    ALittleIsEnoughAttack,
    AttackContext,
    FallOfEmpiresAttack,
    LargeNormAttack,
    MimicAttack,
    RandomGaussianAttack,
    SignFlipAttack,
    ZeroGradientAttack,
    available_attacks,
    flip_binary_labels,
    get_attack,
)
from repro.data.datasets import Dataset
from repro.exceptions import ConfigurationError, DataError
from repro.rng import generator_from_seed
from tests.helpers import random_gradient_matrix


def make_context(submitted=None, clean=None, d=6, num_honest=6, seed=0):
    if submitted is None:
        submitted = random_gradient_matrix(num_honest, d, seed=seed)
    if clean is None:
        clean = submitted + 0.5  # distinguishable clean view
    return AttackContext(
        step=1,
        honest_submitted=submitted,
        honest_clean=clean,
        parameters=np.zeros(submitted.shape[1]),
        num_byzantine=5,
        rng=generator_from_seed(seed),
    )


class TestAttackContext:
    def test_views(self):
        context = make_context()
        assert np.array_equal(context.honest_view("submitted"), context.honest_submitted)
        assert np.array_equal(context.honest_view("clean"), context.honest_clean)

    def test_invalid_view(self):
        with pytest.raises(ConfigurationError, match="knowledge"):
            make_context().honest_view("psychic")


class TestALittleIsEnough:
    def test_paper_formula(self):
        """Byzantine gradient = mean - 1.5 * coordinate-wise std."""
        context = make_context()
        crafted = ALittleIsEnoughAttack().craft(context)
        honest = context.honest_submitted
        expected = honest.mean(axis=0) - 1.5 * honest.std(axis=0)
        assert np.allclose(crafted, expected)

    def test_default_factor_is_paper_value(self):
        assert ALittleIsEnoughAttack().factor == 1.5

    def test_custom_factor(self):
        context = make_context()
        crafted = ALittleIsEnoughAttack(factor=3.0).craft(context)
        honest = context.honest_submitted
        assert np.allclose(crafted, honest.mean(axis=0) - 3.0 * honest.std(axis=0))

    def test_zero_factor_submits_mean(self):
        context = make_context()
        crafted = ALittleIsEnoughAttack(factor=0.0).craft(context)
        assert np.allclose(crafted, context.honest_submitted.mean(axis=0))

    def test_clean_knowledge_uses_clean_view(self):
        context = make_context()
        crafted = ALittleIsEnoughAttack(knowledge="clean").craft(context)
        clean = context.honest_clean
        assert np.allclose(crafted, clean.mean(axis=0) - 1.5 * clean.std(axis=0))

    def test_stays_inside_honest_spread(self):
        """The attack's point: per coordinate the crafted value is only
        1.5 sigma from the mean — within the plausible range."""
        context = make_context(num_honest=10, seed=3)
        crafted = ALittleIsEnoughAttack().craft(context)
        honest = context.honest_submitted
        deviation = np.abs(crafted - honest.mean(axis=0))
        assert np.all(deviation <= 1.5 * honest.std(axis=0) + 1e-12)

    def test_negative_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            ALittleIsEnoughAttack(factor=-1.0)


class TestFallOfEmpires:
    def test_paper_formula(self):
        """Byzantine gradient = (1 - nu) g_t with nu = 1.1 -> -0.1 g_t."""
        context = make_context()
        crafted = FallOfEmpiresAttack().craft(context)
        expected = -0.1 * context.honest_submitted.mean(axis=0)
        assert np.allclose(crafted, expected)

    def test_default_factor_is_paper_value(self):
        assert FallOfEmpiresAttack().factor == 1.1

    def test_factor_one_zeroes(self):
        context = make_context()
        assert np.allclose(FallOfEmpiresAttack(factor=1.0).craft(context), 0.0)

    def test_large_factor_reverses_gradient(self):
        context = make_context()
        crafted = FallOfEmpiresAttack(factor=2.0).craft(context)
        mean = context.honest_submitted.mean(axis=0)
        assert np.dot(crafted, mean) < 0


class TestSimpleAttacks:
    def test_signflip(self):
        context = make_context()
        crafted = SignFlipAttack(scale=2.0).craft(context)
        assert np.allclose(crafted, -2.0 * context.honest_submitted.mean(axis=0))

    def test_random_gaussian_scale(self):
        context = make_context(d=20000, num_honest=2)
        crafted = RandomGaussianAttack(scale=3.0).craft(context)
        assert crafted.std() == pytest.approx(3.0, rel=0.05)

    def test_random_deterministic_per_rng(self):
        a = RandomGaussianAttack().craft(make_context(seed=5))
        b = RandomGaussianAttack().craft(make_context(seed=5))
        assert np.array_equal(a, b)

    def test_zero(self):
        crafted = ZeroGradientAttack().craft(make_context())
        assert np.array_equal(crafted, np.zeros_like(crafted))

    def test_large_norm(self):
        crafted = LargeNormAttack(norm=123.0).craft(make_context())
        assert np.linalg.norm(crafted) == pytest.approx(123.0)

    def test_mimic_copies_target(self):
        context = make_context()
        crafted = MimicAttack(target_index=2).craft(context)
        assert np.array_equal(crafted, context.honest_submitted[2])

    def test_mimic_wraps_index(self):
        context = make_context(num_honest=4)
        crafted = MimicAttack(target_index=6).craft(context)
        assert np.array_equal(crafted, context.honest_submitted[2])


class TestRegistry:
    def test_available(self):
        names = available_attacks()
        assert "little" in names and "empire" in names
        assert list(names) == sorted(names)

    def test_get_with_kwargs(self):
        attack = get_attack("little", factor=2.5, knowledge="clean")
        assert attack.factor == 2.5
        assert attack.knowledge == "clean"

    def test_unknown(self):
        with pytest.raises(ConfigurationError, match="unknown attack"):
            get_attack("nope")

    def test_invalid_knowledge(self):
        with pytest.raises(ConfigurationError):
            get_attack("little", knowledge="other")


class TestLabelFlip:
    def make_dataset(self):
        return Dataset(
            features=np.zeros((6, 2)),
            labels=np.array([0.0, 1.0, 0.0, 1.0, 1.0, 0.0]),
        )

    def test_full_flip(self):
        flipped = flip_binary_labels(self.make_dataset())
        assert np.array_equal(flipped.labels, [1.0, 0.0, 1.0, 0.0, 0.0, 1.0])

    def test_partial_flip_counts(self):
        rng = generator_from_seed(0)
        flipped = flip_binary_labels(self.make_dataset(), fraction=0.5, rng=rng)
        changed = int(np.sum(flipped.labels != self.make_dataset().labels))
        assert 0 <= changed <= 6

    def test_partial_needs_rng(self):
        with pytest.raises(DataError, match="rng"):
            flip_binary_labels(self.make_dataset(), fraction=0.5)

    def test_nonbinary_rejected(self):
        dataset = Dataset(features=np.zeros((2, 1)), labels=np.array([0.0, 2.0]))
        with pytest.raises(DataError, match="0, 1"):
            flip_binary_labels(dataset)

    def test_original_untouched(self):
        dataset = self.make_dataset()
        flip_binary_labels(dataset)
        assert np.array_equal(dataset.labels, [0.0, 1.0, 0.0, 1.0, 1.0, 0.0])
