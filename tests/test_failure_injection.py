"""Failure-injection tests: crashes, message loss, and mixed adversity.

The paper's model treats non-received gradients as zero vectors
(Section 2.1) and distinguishes "erroneous" Byzantine gradients
(crashes, asynchrony) from forged ones.  These tests drive the cluster
through those degraded modes and check the robust pipeline survives
them while the naive one does not.
"""

import numpy as np
import pytest

from repro.data.datasets import train_test_split
from repro.data.phishing import make_phishing_dataset
from repro.distributed.trainer import train
from repro.models.logistic import LogisticRegressionModel
from repro.rng import generator_from_seed

STEPS = 150


@pytest.fixture(scope="module")
def environment():
    dataset = make_phishing_dataset(seed=0, num_points=1500, num_features=12)
    train_set, test_set = train_test_split(dataset, 1100, generator_from_seed(1))
    model = LogisticRegressionModel(12, loss_kind="mse")
    return model, train_set, test_set


def run(environment, **kwargs):
    model, train_set, test_set = environment
    defaults = dict(
        model=model,
        train_dataset=train_set,
        test_dataset=test_set,
        num_steps=STEPS,
        n=11,
        f=5,
        batch_size=20,
        eval_every=50,
        seed=1,
    )
    defaults.update(kwargs)
    return train(**defaults)


class TestCrashFaults:
    def test_zero_attack_models_crashed_workers(self, environment):
        """f workers permanently sending zeros (crash/asynchrony) should
        not stop MDA training."""
        result = run(environment, gar="mda", attack="zero")
        baseline = run(environment, gar="average", f=0)
        assert result.history.max_accuracy > baseline.history.max_accuracy - 0.06

    def test_zero_attack_slows_averaging_but_not_fatally(self, environment):
        """Zeros only shrink the average by (n-f)/n — a benign fault."""
        result = run(environment, gar="average", f=5, attack="zero")
        assert result.history.max_accuracy > 0.8


class TestMessageLoss:
    @pytest.mark.parametrize("drop", [0.05, 0.2])
    def test_training_survives_random_drops(self, environment, drop):
        result = run(environment, gar="mda", drop_probability=drop)
        assert result.history.max_accuracy > 0.82

    def test_heavy_loss_degrades_averaging(self, environment):
        lossy = run(environment, gar="average", f=0, drop_probability=0.6)
        clean = run(environment, gar="average", f=0)
        # Dropped gradients scale the mean down; training is slower.
        assert lossy.history.final_loss >= clean.history.final_loss - 1e-9

    def test_drops_are_seeded(self, environment):
        a = run(environment, gar="mda", drop_probability=0.3, seed=9)
        b = run(environment, gar="mda", drop_probability=0.3, seed=9)
        assert np.array_equal(a.final_parameters, b.final_parameters)


class TestMixedAdversity:
    def test_attack_plus_message_loss(self, environment):
        """ALIE + 10% message loss: MDA still trains."""
        result = run(environment, gar="mda", attack="little", drop_probability=0.1)
        assert result.history.max_accuracy > 0.82

    def test_fewer_attackers_than_declared(self, environment):
        """Declaring f=5 but facing only 2 attackers still trains fine
        (the GAR's tolerance is an upper bound, not a requirement)."""
        few = run(environment, gar="mda", attack="little", num_byzantine=2)
        assert few.history.max_accuracy > 0.82

    def test_large_norm_attack_with_dp(self, environment):
        """Unbounded attacks stay filtered even with DP noise on."""
        result = run(
            environment,
            gar="mda",
            attack="large-norm",
            epsilon=0.9,
            batch_size=100,
        )
        # MDA excludes the enormous vectors; training proceeds (the DP
        # noise itself still costs accuracy, which is the paper's point).
        assert result.history.final_loss < 0.3
