"""Tests for the exception hierarchy."""

import pytest

from repro.exceptions import (
    AggregationError,
    ConfigurationError,
    DataError,
    PrivacyError,
    ReproError,
    ResilienceError,
    TrainingError,
)

ALL_ERRORS = [
    AggregationError,
    ConfigurationError,
    DataError,
    PrivacyError,
    ResilienceError,
    TrainingError,
]


@pytest.mark.parametrize("error_class", ALL_ERRORS)
def test_all_derive_from_repro_error(error_class):
    assert issubclass(error_class, ReproError)


@pytest.mark.parametrize("error_class", ALL_ERRORS)
def test_catchable_as_repro_error(error_class):
    with pytest.raises(ReproError):
        raise error_class("boom")


def test_repro_error_is_exception():
    assert issubclass(ReproError, Exception)


def test_errors_are_distinct(_pairs=[(a, b) for a in ALL_ERRORS for b in ALL_ERRORS if a is not b]):
    for a, b in _pairs:
        assert not issubclass(a, b)
