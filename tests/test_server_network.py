"""Tests for the parameter server and the simulated network."""

import numpy as np
import pytest

from repro.distributed.network import LossyNetwork, PerfectNetwork
from repro.distributed.server import ParameterServer
from repro.exceptions import ConfigurationError
from repro.gars import get_gar
from repro.optim.sgd import SGDOptimizer
from repro.rng import generator_from_seed
from tests.helpers import random_gradient_matrix


def make_server(n=5, f=0, gar="average", record=False, lr=0.5, momentum=0.0):
    return ParameterServer(
        initial_parameters=np.zeros(4),
        gar=get_gar(gar, n, f),
        optimizer=SGDOptimizer(lr, momentum=momentum),
        record_received=record,
    )


class TestParameterServer:
    def test_step_applies_aggregate(self):
        server = make_server()
        gradients = np.ones((5, 4))
        aggregated = server.step(gradients)
        assert np.allclose(aggregated, np.ones(4))
        assert np.allclose(server.parameters, -0.5 * np.ones(4))

    def test_parameters_returns_copy(self):
        server = make_server()
        view = server.parameters
        view[:] = 99.0
        assert not np.allclose(server.parameters, 99.0)

    def test_step_count(self):
        server = make_server()
        for expected in range(1, 4):
            server.step(np.zeros((5, 4)))
            assert server.step_count == expected

    def test_shape_validated(self):
        server = make_server()
        with pytest.raises(ConfigurationError, match="gradient matrix"):
            server.step(np.zeros((4, 4)))  # wrong worker count

    def test_curiosity_log_disabled_by_default(self):
        server = make_server()
        server.step(np.ones((5, 4)))
        assert server.received_log == []

    def test_curiosity_log_records_copies(self):
        server = make_server(record=True)
        gradients = np.ones((5, 4))
        server.step(gradients)
        gradients[:] = 0.0
        log = server.received_log
        assert len(log) == 1
        assert np.allclose(log[0], 1.0)

    def test_robust_gar_server(self):
        server = make_server(n=11, f=5, gar="mda")
        gradients = random_gradient_matrix(11, 4, seed=0)
        aggregated = server.step(gradients)
        assert aggregated.shape == (4,)


class TestPerfectNetwork:
    def test_identity(self):
        network = PerfectNetwork()
        gradients = random_gradient_matrix(4, 3, seed=0)
        assert network.deliver(gradients, 1) is gradients

    def test_drop_probability_zero(self):
        assert PerfectNetwork().drop_probability == 0.0


class TestLossyNetwork:
    def test_zero_probability_is_identity(self):
        network = LossyNetwork(0.0, generator_from_seed(0))
        gradients = random_gradient_matrix(4, 3, seed=0)
        assert network.deliver(gradients, 1) is gradients

    def test_dropped_rows_become_zero(self):
        network = LossyNetwork(0.99, generator_from_seed(1))
        gradients = np.ones((100, 3))
        delivered = network.deliver(gradients, 1)
        dropped_rows = np.all(delivered == 0.0, axis=1)
        assert dropped_rows.sum() > 80

    def test_original_not_mutated(self):
        network = LossyNetwork(0.99, generator_from_seed(2))
        gradients = np.ones((10, 3))
        network.deliver(gradients, 1)
        assert np.all(gradients == 1.0)

    def test_drop_rate_statistics(self):
        network = LossyNetwork(0.3, generator_from_seed(3))
        total = 0
        for step in range(100):
            delivered = network.deliver(np.ones((50, 2)), step)
            total += int(np.sum(np.all(delivered == 0.0, axis=1)))
        assert total == pytest.approx(0.3 * 5000, rel=0.1)
        assert network.dropped_total == total

    def test_invalid_probability(self):
        with pytest.raises(ConfigurationError):
            LossyNetwork(1.0, generator_from_seed(0))
        with pytest.raises(ConfigurationError):
            LossyNetwork(-0.1, generator_from_seed(0))
