"""Tests for the VN ratio module (Eq. 2 and Eq. 8)."""

import math

import numpy as np
import pytest

from repro.core.vn_ratio import (
    dp_noise_total_variance,
    dp_vn_ratio_from_moments,
    empirical_gradient_moments,
    empirical_vn_ratio,
    vn_condition_holds,
    vn_ratio_from_moments,
)
from repro.exceptions import ResilienceError
from repro.rng import generator_from_seed


class TestVNRatioFromMoments:
    def test_formula(self):
        assert vn_ratio_from_moments(4.0, 2.0) == pytest.approx(1.0)

    def test_zero_variance(self):
        assert vn_ratio_from_moments(0.0, 1.0) == 0.0

    def test_negative_variance_rejected(self):
        with pytest.raises(ResilienceError):
            vn_ratio_from_moments(-1.0, 1.0)

    def test_zero_mean_rejected(self):
        with pytest.raises(ResilienceError, match="undefined"):
            vn_ratio_from_moments(1.0, 0.0)


class TestEmpiricalMoments:
    def test_known_gaussian(self):
        """Samples from N(mu, sigma^2 I_d): total variance ~ d sigma^2,
        mean norm ~ ||mu||."""
        rng = generator_from_seed(0)
        mu = np.array([3.0, 4.0])  # norm 5
        samples = mu + 0.5 * rng.standard_normal((20_000, 2))
        variance, mean_norm = empirical_gradient_moments(samples)
        assert variance == pytest.approx(2 * 0.25, rel=0.05)
        assert mean_norm == pytest.approx(5.0, rel=0.01)

    def test_single_sample_zero_variance(self):
        variance, mean_norm = empirical_gradient_moments(np.array([[3.0, 4.0]]))
        assert variance == 0.0
        assert mean_norm == pytest.approx(5.0)

    def test_empirical_vn_ratio_consistency(self):
        rng = generator_from_seed(1)
        samples = np.array([10.0, 0.0]) + rng.standard_normal((50_000, 2))
        # VN ratio should approach sqrt(2)/10.
        assert empirical_vn_ratio(samples) == pytest.approx(math.sqrt(2) / 10, rel=0.05)


class TestDPNoiseVariance:
    def test_paper_formula(self):
        d, g_max, b, eps, delta = 69, 1e-2, 50, 0.2, 1e-6
        expected = 8 * d * g_max**2 * math.log(1.25 / delta) / (eps**2 * b**2)
        assert dp_noise_total_variance(d, g_max, b, eps, delta) == pytest.approx(expected)

    def test_equals_d_times_mechanism_sigma_squared(self):
        """Consistency with the Gaussian mechanism's calibration: the
        Eq. 8 term is exactly d * s^2."""
        from repro.privacy.mechanisms import GaussianMechanism

        d, g_max, b, eps, delta = 69, 1e-2, 50, 0.2, 1e-6
        mechanism = GaussianMechanism.for_clipped_gradients(eps, delta, g_max, b)
        assert dp_noise_total_variance(d, g_max, b, eps, delta) == pytest.approx(
            d * mechanism.sigma**2
        )

    def test_linear_in_d(self):
        low = dp_noise_total_variance(10, 1e-2, 50, 0.2, 1e-6)
        high = dp_noise_total_variance(1000, 1e-2, 50, 0.2, 1e-6)
        assert high == pytest.approx(100 * low)

    def test_inverse_square_in_b(self):
        small = dp_noise_total_variance(69, 1e-2, 10, 0.2, 1e-6)
        large = dp_noise_total_variance(69, 1e-2, 100, 0.2, 1e-6)
        assert small == pytest.approx(100 * large)

    def test_inverse_square_in_epsilon(self):
        strict = dp_noise_total_variance(69, 1e-2, 50, 0.1, 1e-6)
        loose = dp_noise_total_variance(69, 1e-2, 50, 0.2, 1e-6)
        assert strict == pytest.approx(4 * loose)

    @pytest.mark.parametrize("kwargs", [
        {"dimension": 0},
        {"g_max": 0.0},
        {"batch_size": 0},
        {"epsilon": 0.0},
        {"delta": 1.0},
    ])
    def test_validation(self, kwargs):
        defaults = dict(dimension=10, g_max=0.01, batch_size=10, epsilon=0.5, delta=1e-6)
        defaults.update(kwargs)
        with pytest.raises(ResilienceError):
            dp_noise_total_variance(**defaults)


class TestDPVNRatio:
    def test_always_larger_than_clean(self):
        clean = vn_ratio_from_moments(1.0, 0.01)
        noisy = dp_vn_ratio_from_moments(1.0, 0.01, 69, 1e-2, 50, 0.2, 1e-6)
        assert noisy > clean

    def test_high_privacy_blows_up_ratio(self):
        moderate = dp_vn_ratio_from_moments(0.0, 0.01, 69, 1e-2, 50, 0.5, 1e-6)
        strict = dp_vn_ratio_from_moments(0.0, 0.01, 69, 1e-2, 50, 0.05, 1e-6)
        assert strict > 5 * moderate


class TestCondition:
    def test_holds(self):
        assert vn_condition_holds(0.3, 0.42)
        assert not vn_condition_holds(0.5, 0.42)

    def test_boundary_inclusive(self):
        assert vn_condition_holds(0.42, 0.42)

    def test_infinite_k(self):
        assert vn_condition_holds(1e9, math.inf)

    def test_negative_ratio_rejected(self):
        with pytest.raises(ResilienceError):
            vn_condition_holds(-0.1, 1.0)
