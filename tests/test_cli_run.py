"""Tests for the CLI ``run`` subcommand and its helpers."""

import json

import pytest

from repro.experiments.cli import (
    build_parser,
    load_run_file,
    main,
    render_figure_text,
    render_run_summary,
)
from repro.experiments.config import ExperimentConfig


def tiny_cell(name="smoke", **overrides):
    cell = {
        "name": name,
        "num_steps": 4,
        "n": 5,
        "f": 2,
        "gar": "mda",
        "batch_size": 10,
        "eval_every": 2,
        "seeds": [1],
    }
    cell.update(overrides)
    return cell


class TestParser:
    def test_run_options(self):
        arguments = build_parser().parse_args(
            ["run", "grid.json", "--max-workers", "3", "--data-seed", "7"]
        )
        assert arguments.command == "run"
        assert str(arguments.config) == "grid.json"
        assert arguments.max_workers == 3
        assert arguments.data_seed == 7

    def test_run_requires_config(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])


class TestLoadRunFile:
    def test_single_object(self, tmp_path):
        path = tmp_path / "one.json"
        path.write_text(json.dumps(tiny_cell()))
        configs, model_spec, data_seed, telemetry = load_run_file(path)
        assert [c.name for c in configs] == ["smoke"]
        assert model_spec is None and data_seed is None and telemetry is None

    def test_list_of_cells(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text(json.dumps([tiny_cell("a"), tiny_cell("b")]))
        configs, _, _, _ = load_run_file(path)
        assert [c.name for c in configs] == ["a", "b"]
        assert all(isinstance(c, ExperimentConfig) for c in configs)

    def test_grid_document(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text(
            json.dumps(
                {
                    "configs": [tiny_cell()],
                    "model": {"name": "logistic", "loss_kind": "mse"},
                    "data_seed": 3,
                    "telemetry": "out/trace.jsonl",
                }
            )
        )
        configs, model_spec, data_seed, telemetry = load_run_file(path)
        assert len(configs) == 1
        assert model_spec == {"name": "logistic", "loss_kind": "mse"}
        assert data_seed == 3
        assert telemetry == "out/trace.jsonl"


class TestRunCommand:
    def test_smoke(self, tmp_path, capsys):
        path = tmp_path / "config.json"
        path.write_text(json.dumps(tiny_cell()))
        assert main(["run", str(path)]) == 0
        output = capsys.readouterr().out
        assert "smoke" in output
        assert "final loss" in output

    def test_grid_with_model_spec_and_outputs(self, tmp_path, capsys):
        config_path = tmp_path / "grid.json"
        config_path.write_text(
            json.dumps(
                {
                    "configs": [tiny_cell("cell-a"), tiny_cell("cell-b", epsilon=0.5)],
                    "model": {"name": "logistic", "loss_kind": "mse"},
                }
            )
        )
        summary_path = tmp_path / "summary.txt"
        outcomes_path = tmp_path / "outcomes.json"
        code = main(
            [
                "run",
                str(config_path),
                "--max-workers",
                "2",
                "--save",
                str(outcomes_path),
                "--output",
                str(summary_path),
            ]
        )
        assert code == 0
        assert "cell-a" in summary_path.read_text()
        saved = json.loads(outcomes_path.read_text())
        assert set(saved) == {"cell-a", "cell-b"}

    def test_list_mentions_run(self, capsys):
        assert main(["list"]) == 0

    def test_expected_errors_exit_2(self, tmp_path, capsys):
        missing = main(["run", str(tmp_path / "nope.json")])
        bad = tmp_path / "bad.json"
        bad.write_text("{oops")
        malformed = main(["run", str(bad)])
        assert missing == 2
        assert malformed == 2
        errors = capsys.readouterr().err
        assert errors.count("error:") == 2

    def test_data_seed_flag_beats_config_file(self, tmp_path, monkeypatch):
        """--data-seed must override a data_seed key in the file."""
        import repro.experiments.runner as runner_module

        path = tmp_path / "grid.json"
        path.write_text(json.dumps({"configs": [tiny_cell()], "data_seed": 5}))
        seen = []
        real_environment = runner_module.phishing_environment

        def spy(data_seed=0):
            seen.append(data_seed)
            return real_environment(data_seed)

        monkeypatch.setattr(runner_module, "phishing_environment", spy)
        assert main(["run", str(path), "--data-seed", "9"]) == 0
        assert seen == [9]
        assert main(["run", str(path)]) == 0
        assert seen == [9, 5]


class TestSummaryRendering:
    @pytest.fixture(scope="class")
    def outcome_without_accuracy(self):
        from repro.data.datasets import train_test_split
        from repro.data.phishing import make_phishing_dataset
        from repro.experiments.runner import run_config
        from repro.models.logistic import LogisticRegressionModel
        from repro.rng import generator_from_seed

        dataset = make_phishing_dataset(seed=0, num_points=300, num_features=6)
        train_set, _ = train_test_split(dataset, 250, generator_from_seed(1))
        model = LogisticRegressionModel(6, loss_kind="mse")
        config = ExperimentConfig(
            name="no-test-set", num_steps=4, n=5, f=2, gar="mda",
            batch_size=8, seeds=(1,),
        )
        return run_config(config, model, train_set, None)

    def test_run_summary_renders_na(self, outcome_without_accuracy):
        text = render_run_summary({"no-test-set": outcome_without_accuracy})
        assert "n/a" in text
        assert "no-test-set" in text

    def test_figure_text_survives_missing_accuracy(self, outcome_without_accuracy):
        """The former AttributeError crash: accuracy_stats is None."""
        outcomes = {
            "mda-noattack-nodp": outcome_without_accuracy,
            "mda-noattack-dp": outcome_without_accuracy,
        }
        text = render_figure_text("figure2", outcomes)
        assert "n/a" in text
        assert "without DP" in text
