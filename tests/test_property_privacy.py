"""Property-based and statistical tests on the privacy substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.privacy.accountants import (
    AdvancedCompositionAccountant,
    BasicCompositionAccountant,
    RDPAccountant,
)
from repro.privacy.amplification import amplify_by_subsampling
from repro.privacy.mechanisms import GaussianMechanism, LaplaceMechanism
from repro.rng import generator_from_seed

epsilons = st.floats(0.01, 0.99)
deltas = st.floats(1e-9, 1e-3)
batch_sizes = st.integers(1, 1000)
step_counts = st.integers(1, 5000)


class TestMechanismProperties:
    @given(epsilon=epsilons, delta=deltas, batch_size=batch_sizes)
    @settings(max_examples=50, deadline=None)
    def test_gaussian_sigma_positive_and_finite(self, epsilon, delta, batch_size):
        mechanism = GaussianMechanism.for_clipped_gradients(
            epsilon, delta, 1e-2, batch_size
        )
        assert 0 < mechanism.sigma < np.inf

    @given(epsilon=epsilons, delta=deltas)
    @settings(max_examples=50, deadline=None)
    def test_gaussian_sigma_antitone_in_batch(self, epsilon, delta):
        small = GaussianMechanism.for_clipped_gradients(epsilon, delta, 1e-2, 10)
        large = GaussianMechanism.for_clipped_gradients(epsilon, delta, 1e-2, 100)
        assert large.sigma < small.sigma

    @given(epsilon=epsilons, delta=deltas, batch_size=batch_sizes)
    @settings(max_examples=50, deadline=None)
    def test_noise_multiplier_independent_of_sensitivity(
        self, epsilon, delta, batch_size
    ):
        """sigma/sensitivity depends only on (eps, delta)."""
        a = GaussianMechanism.for_clipped_gradients(epsilon, delta, 1e-2, batch_size)
        b = GaussianMechanism.for_clipped_gradients(epsilon, delta, 1.0, batch_size)
        assert a.noise_multiplier == pytest.approx(b.noise_multiplier)

    def test_gaussian_noise_is_gaussian(self):
        """Kolmogorov-Smirnov test of the sampled noise distribution."""
        mechanism = GaussianMechanism(0.5, 1e-6, 1.0)
        noise = mechanism.sample_noise(50_000, generator_from_seed(0))
        statistic, p_value = stats.kstest(noise / mechanism.sigma, "norm")
        assert p_value > 0.01

    def test_laplace_noise_is_laplace(self):
        mechanism = LaplaceMechanism(0.5, 1.0)
        noise = mechanism.sample_noise(50_000, generator_from_seed(1))
        statistic, p_value = stats.kstest(noise / mechanism.scale, "laplace")
        assert p_value > 0.01

    def test_privatized_mean_unbiased(self):
        """E[M(g)] = g: averaging many privatized copies recovers g."""
        mechanism = GaussianMechanism(0.5, 1e-6, 1.0)
        rng = generator_from_seed(2)
        gradient = np.array([1.0, -2.0, 0.5])
        copies = np.stack([mechanism.privatize(gradient, rng) for _ in range(20_000)])
        assert np.allclose(copies.mean(axis=0), gradient, atol=0.05 * mechanism.sigma + 0.01)


class TestAccountantProperties:
    @given(epsilon=epsilons, delta=deltas, steps=step_counts)
    @settings(max_examples=50, deadline=None)
    def test_basic_linear_exactly(self, epsilon, delta, steps):
        spend = BasicCompositionAccountant().compose(epsilon, delta, steps)
        assert spend.epsilon == pytest.approx(steps * epsilon)
        assert spend.delta == pytest.approx(steps * delta)

    @given(epsilon=st.floats(0.01, 0.3), steps=st.integers(100, 5000))
    @settings(max_examples=50, deadline=None)
    def test_advanced_beats_basic_eventually(self, epsilon, steps):
        basic = BasicCompositionAccountant().compose(epsilon, 0.0, steps)
        advanced = AdvancedCompositionAccountant(1e-6).compose(epsilon, 0.0, steps)
        if steps * epsilon**2 > 50:  # regime where sqrt(k) wins
            assert advanced.epsilon < basic.epsilon

    @given(multiplier=st.floats(0.5, 50.0), steps=step_counts)
    @settings(max_examples=50, deadline=None)
    def test_rdp_monotone_in_steps(self, multiplier, steps):
        short = RDPAccountant()
        short.step_gaussian(multiplier, steps)
        long = RDPAccountant()
        long.step_gaussian(multiplier, steps + 100)
        assert (
            long.get_privacy_spent(1e-6).epsilon
            > short.get_privacy_spent(1e-6).epsilon
        )

    @given(multiplier=st.floats(0.5, 50.0))
    @settings(max_examples=50, deadline=None)
    def test_rdp_monotone_in_noise(self, multiplier):
        noisy = RDPAccountant()
        noisy.step_gaussian(multiplier * 2, 100)
        quiet = RDPAccountant()
        quiet.step_gaussian(multiplier, 100)
        assert noisy.get_privacy_spent(1e-6).epsilon < quiet.get_privacy_spent(1e-6).epsilon

    @given(
        epsilon=epsilons,
        delta=deltas,
        batch_size=st.integers(1, 100),
        dataset_size=st.integers(100, 100_000),
    )
    @settings(max_examples=50, deadline=None)
    def test_amplification_never_hurts(self, epsilon, delta, batch_size, dataset_size):
        amplified = amplify_by_subsampling(epsilon, delta, batch_size, dataset_size)
        assert amplified.epsilon <= epsilon + 1e-12
        assert amplified.delta <= delta + 1e-18

    @given(epsilon=epsilons, delta=deltas)
    @settings(max_examples=30, deadline=None)
    def test_amplification_monotone_in_rate(self, epsilon, delta):
        low_rate = amplify_by_subsampling(epsilon, delta, 10, 10_000)
        high_rate = amplify_by_subsampling(epsilon, delta, 100, 10_000)
        assert low_rate.epsilon < high_rate.epsilon
