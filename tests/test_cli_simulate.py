"""Tests for the ``simulate`` and ``components`` CLI subcommands."""

import json
from pathlib import Path

import pytest

from repro.experiments.cli import build_parser, main

EXAMPLE_CONFIG = Path(__file__).parent.parent / "examples" / "simulate_async.json"


class TestComponentsCommand:
    def test_lists_every_family(self, capsys):
        assert main(["components"]) == 0
        output = capsys.readouterr().out
        from repro.pipeline.registry import BUILTIN_FAMILIES, REGISTRY

        for family in BUILTIN_FAMILIES:
            assert f"{family}:" in output
            for name in REGISTRY.available(family):
                assert name in output

    def test_lists_new_simulation_families(self, capsys):
        assert main(["components"]) == 0
        output = capsys.readouterr().out
        assert "latency: constant, lognormal, straggler" in output
        assert "policy: async-staleness, semi-sync, sync" in output

    def test_lists_user_registrations(self, capsys):
        from repro.pipeline.registry import REGISTRY

        REGISTRY.register("latency", "cli-test-latency", lambda: None)
        try:
            assert main(["components"]) == 0
            assert "cli-test-latency" in capsys.readouterr().out
        finally:
            REGISTRY._families["latency"].pop("cli-test-latency")


class TestSimulateParser:
    def test_defaults(self):
        arguments = build_parser().parse_args(["simulate", "cfg.json"])
        assert arguments.command == "simulate"
        assert str(arguments.config) == "cfg.json"
        assert arguments.smoke is False
        assert arguments.data_seed is None
        assert arguments.output is None

    def test_smoke_flag(self):
        arguments = build_parser().parse_args(["simulate", "cfg.json", "--smoke"])
        assert arguments.smoke is True


class TestSimulateCommand:
    def test_example_config_smoke(self, capsys):
        """The committed example must run end to end under --smoke."""
        assert main(["simulate", str(EXAMPLE_CONFIG), "--smoke"]) == 0
        output = capsys.readouterr().out
        assert "semisync-straggler-dp" in output
        assert "async-staleness-lognormal" in output
        assert "sync-baseline" in output
        assert "policy" in output and "v-time" in output

    def test_writes_output_file(self, tmp_path, capsys):
        target = tmp_path / "summary.txt"
        assert (
            main(["simulate", str(EXAMPLE_CONFIG), "--smoke", "--output", str(target)])
            == 0
        )
        assert "sync-baseline" in target.read_text()

    def test_missing_file_is_error_exit(self, capsys):
        assert main(["simulate", "no-such-file.json"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_config_is_error_exit(self, tmp_path, capsys):
        config = tmp_path / "bad.json"
        config.write_text(json.dumps({"name": "x", "policy": "bogus", "seeds": [1]}))
        assert main(["simulate", str(config)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_single_cell_file(self, tmp_path, capsys):
        config = tmp_path / "one.json"
        config.write_text(
            json.dumps(
                {
                    "name": "one-cell",
                    "num_steps": 3,
                    "n": 5,
                    "f": 1,
                    "gar": "median",
                    "attack": "little",
                    "batch_size": 10,
                    "eval_every": 3,
                    "seeds": [1],
                    "policy": "semi-sync",
                    "policy_kwargs": {"buffer_size": 3},
                    "latency": "constant",
                    "latency_kwargs": {"delay": 1.0},
                }
            )
        )
        assert main(["simulate", str(config)]) == 0
        assert "one-cell" in capsys.readouterr().out


class TestConfigSimulationFields:
    def test_round_trip(self):
        from repro.experiments.config import ExperimentConfig

        config = ExperimentConfig(
            name="x",
            policy="semi-sync",
            policy_kwargs=(("buffer_size", 4),),
            latency="straggler",
            latency_kwargs=(("base", 1.0), ("slowdown", 5.0)),
            participation_rate=0.5,
            participation_kind="uniform",
        )
        restored = ExperimentConfig.from_dict(
            json.loads(json.dumps(config.to_dict()))
        )
        assert restored == config

    def test_kwargs_accept_json_mappings(self):
        from repro.experiments.config import ExperimentConfig

        config = ExperimentConfig.from_dict(
            {
                "name": "x",
                "policy_kwargs": {"buffer_size": 4},
                "latency_kwargs": {"delay": 2.0},
            }
        )
        assert config.policy_kwargs == (("buffer_size", 4),)
        assert config.latency_kwargs == (("delay", 2.0),)

    def test_defaults_replay_paper_protocol(self):
        from repro.experiments.config import ExperimentConfig

        config = ExperimentConfig(name="x")
        kwargs = config.simulation_kwargs()
        assert kwargs["policy"] == "sync"
        assert kwargs["latency"] is None
        assert kwargs["participation_rate"] == 1.0

    def test_invalid_participation_rate(self):
        from repro.exceptions import ConfigurationError
        from repro.experiments.config import ExperimentConfig

        with pytest.raises(ConfigurationError, match="participation_rate"):
            ExperimentConfig(name="x", participation_rate=0.0)

    def test_train_kwargs_unpolluted(self):
        """The legacy train() surface must not grow simulation keys."""
        from repro.experiments.config import ExperimentConfig

        kwargs = ExperimentConfig(name="x", policy="async-staleness").train_kwargs(1)
        assert "policy" not in kwargs
        assert "latency" not in kwargs
        assert "participation_rate" not in kwargs
