"""End-to-end training benchmark: fused round engine vs the kept slow path.

Times whole synchronous training rounds — batch sampling, stacked
gradients, clipping, DP noise, momentum, the colluding attack, the
network and the server update — through the fused
:class:`repro.distributed.engine.RoundEngine` and through the verbatim
pre-fusion loop kept in :mod:`repro.distributed.reference`, on
identically-seeded experiments.  Both paths must agree bit for bit
(losses and final parameters) or the cell is flagged.

Two ways to run it::

    # standalone: prints the table and writes BENCH_training.json
    PYTHONPATH=src python benchmarks/bench_training.py [--smoke]

    # same engine, via the CLI (supports the CI regression guard)
    python -m repro bench --training [--smoke] [--check BENCH_training.json]

The JSON document (``BENCH_training.json``) records the repo's
end-to-end training throughput trajectory; see README "Performance"
for the schema and how to read it next to ``BENCH_kernels.json``.
"""

import sys
from pathlib import Path

from repro.distributed.benchmark import (
    default_training_grid,
    format_training_table,
    run_training_benchmarks,
    save_benchmarks,
    smoke_training_grid,
)


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    smoke = "--smoke" in argv
    grid = smoke_training_grid() if smoke else default_training_grid()
    payload = run_training_benchmarks(grid, repeats=5, verbose=True)
    output = Path("BENCH_training.json")
    save_benchmarks(payload, output)
    print(f"wrote {output}")
    print(format_training_table(payload))
    return 0


if __name__ == "__main__":
    sys.exit(main())
