"""Figure 4 reproduction: b = 500 — both notions tolerated together.

Expected shape: "the minimum loss and maximum accuracy achieved by the
unattacked, non differentially-private runs are also achieved under
attack and/or with the privacy noise" — at the cost of a batch ~50x
larger than what mere convergence needs (Fig. 3's b = 10).

Run with ``pytest benchmarks/bench_figure4.py --benchmark-only -s``.
"""

import pytest

from benchmarks.figure_common import render_figure, run_figure_grid, write_output

BATCH_SIZE = 500


@pytest.mark.benchmark(group="figures")
def test_figure4(benchmark):
    outcomes = benchmark.pedantic(
        run_figure_grid, args=(BATCH_SIZE,), rounds=1, iterations=1
    )
    text = render_figure(outcomes, "figure4", BATCH_SIZE)
    write_output("figure4", text, outcomes)
    print("\n" + text)

    baseline = outcomes["avg-noattack-nodp"].accuracy_stats.mean.max()
    assert baseline > 0.9
    for cell in ("mda-little-dp", "mda-empire-dp", "avg-noattack-dp"):
        accuracy = outcomes[cell].accuracy_stats.mean.max()
        assert accuracy > baseline - 0.05, (
            f"{cell}: at b=500, DP and Byzantine resilience should coexist"
        )
