"""Shared helpers for the figure-reproduction benchmarks.

Each ``bench_figureN.py`` runs the full grid of one paper figure
(8 cells x 5 seeds x 1000 steps by default, trimmed via environment
variables for quick runs), renders the loss/accuracy series as ASCII
plots, prints a summary table, and writes everything under
``benchmarks/output/``.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.experiments.ascii_plot import ascii_line_plot
from repro.experiments.figures import figure_configs
from repro.experiments.io import save_outcomes
from repro.experiments.runner import RunOutcome, phishing_environment, run_grid

OUTPUT_DIR = Path(__file__).parent / "output"

# Environment knobs for quick local iterations, e.g.
#   REPRO_BENCH_STEPS=200 REPRO_BENCH_SEEDS=2 pytest benchmarks/bench_figure2.py
BENCH_STEPS = int(os.environ.get("REPRO_BENCH_STEPS", "1000"))
BENCH_SEEDS = tuple(range(1, 1 + int(os.environ.get("REPRO_BENCH_SEEDS", "5"))))


def run_figure_grid(batch_size: int) -> dict[str, RunOutcome]:
    """Run all eight cells of one figure at the given batch size."""
    model, train_set, test_set = phishing_environment()
    configs = figure_configs(
        batch_size=batch_size, num_steps=BENCH_STEPS, seeds=BENCH_SEEDS
    )
    return run_grid(configs, model, train_set, test_set)


def summary_table(outcomes: dict[str, RunOutcome]) -> str:
    """Fixed-width per-cell summary (the numbers behind the figure)."""
    header = (
        f"{'cell':<22}{'gar':<9}{'attack':<9}{'eps':>6}"
        f"{'min loss':>10}{'final loss':>12}{'max acc':>9}{'final acc':>11}"
    )
    lines = [header, "-" * len(header)]
    for name, outcome in outcomes.items():
        config = outcome.config
        accuracy = outcome.accuracy_stats
        lines.append(
            f"{name:<22}{config.gar:<9}{config.attack or 'none':<9}"
            f"{config.epsilon if config.epsilon is not None else '-':>6}"
            f"{outcome.min_loss_mean:>10.4f}{outcome.final_loss_mean:>12.4f}"
            f"{accuracy.mean.max():>9.3f}{accuracy.final_mean:>11.3f}"
        )
    return "\n".join(lines)


def render_figure(outcomes: dict[str, RunOutcome], figure_name: str, batch_size: int) -> str:
    """ASCII rendering of both panels (loss curves, accuracy curves)."""
    sections = [f"=== {figure_name}: b = {batch_size}, {len(BENCH_SEEDS)} seeds, "
                f"{BENCH_STEPS} steps ==="]
    for dp_label, dp_suffix in (("Without privacy noise", "nodp"), ("With privacy noise (eps=0.2)", "dp")):
        loss_series = {}
        accuracy_series = {}
        for name, outcome in outcomes.items():
            if not name.endswith("-" + dp_suffix):
                continue
            short = name.rsplit("-", 1)[0]
            stats = outcome.loss_stats
            loss_series[short] = (stats.steps.tolist(), stats.mean.tolist())
            accuracy = outcome.accuracy_stats
            accuracy_series[short] = (accuracy.steps.tolist(), accuracy.mean.tolist())
        sections.append(
            ascii_line_plot(loss_series, title=f"{dp_label} — training loss (mean over seeds)")
        )
        sections.append(
            ascii_line_plot(
                accuracy_series, title=f"{dp_label} — test accuracy (mean over seeds)"
            )
        )
    sections.append(summary_table(outcomes))
    return "\n\n".join(sections)


def write_output(figure_name: str, text: str, outcomes: dict[str, RunOutcome]) -> None:
    """Persist the rendered text and the raw series as JSON."""
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    (OUTPUT_DIR / f"{figure_name}.txt").write_text(text + "\n")
    save_outcomes(outcomes, OUTPUT_DIR / f"{figure_name}.json")
