"""Batch-size sweep: the crossover the three figures sample.

Figures 2-4 are three batch sizes from a continuum; this bench sweeps
b in {10, 25, 50, 100, 250, 500} for the two critical cells (DP
unattacked, DP + ALIE under MDA) and locates the crossover where DP
and Byzantine resilience start to coexist — the empirical counterpart
of the b >~ sqrt(8 d)/(C k_F) feasibility threshold (= 1037 at the
paper's parameters; training becomes acceptable somewhat earlier since
the VN condition is only sufficient).

Run with ``pytest benchmarks/bench_batch_sweep.py --benchmark-only -s``.
"""

from pathlib import Path

import pytest

from repro.core.feasibility import min_batch_size_for_gar
from repro.experiments.ascii_plot import ascii_line_plot
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import phishing_environment, run_grid
from repro.gars import get_gar

OUTPUT_DIR = Path(__file__).parent / "output"

BATCHES = (10, 25, 50, 100, 250, 500)
STEPS = 600
SEEDS = (1, 2, 3)
EPSILON = 0.2


def run_sweep() -> dict:
    model, train_set, test_set = phishing_environment()
    configs = []
    for batch in BATCHES:
        configs.append(
            ExperimentConfig(
                name=f"dp-clean-b{batch}",
                num_steps=STEPS,
                gar="average",
                f=0,
                batch_size=batch,
                epsilon=EPSILON,
                seeds=SEEDS,
            )
        )
        configs.append(
            ExperimentConfig(
                name=f"dp-alie-b{batch}",
                num_steps=STEPS,
                gar="mda",
                f=5,
                attack="little",
                batch_size=batch,
                epsilon=EPSILON,
                seeds=SEEDS,
            )
        )
    return run_grid(configs, model, train_set, test_set)


@pytest.mark.benchmark(group="ablations")
def test_batch_sweep(benchmark):
    outcomes = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    clean = [float(outcomes[f"dp-clean-b{b}"].accuracy_stats.mean.max()) for b in BATCHES]
    attacked = [float(outcomes[f"dp-alie-b{b}"].accuracy_stats.mean.max()) for b in BATCHES]

    theory_b = min_batch_size_for_gar(get_gar("mda", 11, 5), 69, EPSILON, 1e-6)
    header = f"{'b':>6}{'DP unattacked':>15}{'DP + ALIE (MDA)':>17}"
    lines = [
        f"Batch sweep at eps={EPSILON}: best accuracy, {STEPS} steps, "
        f"{len(SEEDS)} seeds  (VN-condition threshold b >= {theory_b:,.0f})",
        header,
        "-" * len(header),
    ]
    for batch, c, a in zip(BATCHES, clean, attacked):
        lines.append(f"{batch:>6}{c:>15.3f}{a:>17.3f}")
    plot = ascii_line_plot(
        {
            "dp-clean": (list(BATCHES), clean),
            "dp-alie": (list(BATCHES), attacked),
        },
        title="Best accuracy vs batch size (eps = 0.2)",
    )
    report = "\n".join(lines) + "\n\n" + plot
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    (OUTPUT_DIR / "batch_sweep.txt").write_text(report + "\n")
    print("\n" + report)

    # Shape: both curves rise with b; the attacked curve needs a much
    # larger batch than the unattacked one (the antagonism), and by
    # b = 500 both are healthy (Fig. 4).
    assert attacked[-1] > 0.9 and clean[-1] > 0.9
    assert clean[2] > attacked[2] + 0.15, "at b=50 the attacked run lags far behind"
    assert attacked[0] < 0.7, "at b=10 the attacked DP run is broken"
    assert all(
        later >= earlier - 0.03
        for earlier, later in zip(attacked, attacked[1:])
    ), "attacked curve should (weakly) improve with batch size"
