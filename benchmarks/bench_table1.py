"""Table 1 reproduction: per-GAR necessary conditions under DP.

Prints the table at three scales:

1. the paper's experimental setup (d = 69, n = 11, f = 5, b = 50,
   eps = 0.2, delta = 1e-6) — showing even the tiny convex model fails
   the conditions;
2. a small neural network (d = 1e5), the paper's "even for small
   neural networks" remark;
3. ResNet-50 (d = 25.6e6) with the Section 3 corollary b > 5000.

Run with ``pytest benchmarks/bench_table1.py --benchmark-only -s``.
"""

from pathlib import Path

import pytest

from repro.core.feasibility import sqrt_d_batch_rule
from repro.experiments.tables import format_table1, table1_rows

OUTPUT_DIR = Path(__file__).parent / "output"

SCALES = (
    ("paper experiment (logistic, d=69)", 69, 11, 5, 50),
    ("small neural network (d=1e5)", 100_000, 11, 5, 50),
    ("ResNet-50 (d=25.6e6)", 25_600_000, 11, 5, 128),
)
EPSILON, DELTA = 0.2, 1e-6


def build_report() -> str:
    sections = []
    for label, dimension, n, f, batch in SCALES:
        rows = table1_rows(dimension, n, f, batch, EPSILON, DELTA)
        sections.append(f"--- {label} ---")
        sections.append(format_table1(rows, dimension, batch))
    sections.append(
        "Section 3 corollary: b must grow like sqrt(d); for ResNet-50 "
        f"(d = 25.6e6) that is b > {sqrt_d_batch_rule(25_600_000):,.0f}."
    )
    return "\n\n".join(sections)


@pytest.mark.benchmark(group="tables")
def test_table1(benchmark):
    report = benchmark.pedantic(build_report, rounds=1, iterations=1)
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    (OUTPUT_DIR / "table1.txt").write_text(report + "\n")
    print("\n" + report)

    # Shape assertions.
    paper_rows = {r.gar: r for r in table1_rows(69, 11, 5, 50, EPSILON, DELTA)}
    assert paper_rows["mda"].feasible_at_configuration is False
    assert paper_rows["krum"].applicable is False  # n=11, f=5 violates n > 2f+2
    resnet_rows = {
        r.gar: r for r in table1_rows(25_600_000, 11, 5, 128, EPSILON, DELTA)
    }
    # At ResNet-50 scale every applicable GAR fails the condition.
    for row in resnet_rows.values():
        if row.applicable:
            assert row.feasible_at_configuration is False
    assert sqrt_d_batch_rule(25_600_000) > 5000
