"""Kernel benchmark: vectorized aggregation engine vs the original code.

Times every GAR's pre-vectorization reference implementation
(:mod:`repro.gars.reference`, the code that used to run inside
``Cluster.step``) against the batched kernels of
:mod:`repro.gars.kernels` across an ``(n, f, d)`` grid, including the
scaling target ``n = 50, d = 10_000``.

Two ways to run it::

    # standalone: prints the table and writes BENCH_kernels.json
    PYTHONPATH=src python benchmarks/bench_kernels.py [--smoke]

    # same engine, via the CLI
    python -m repro bench [--smoke] [--output BENCH_kernels.json]

    # pytest-benchmark microbenchmarks (old vs new per GAR)
    pytest benchmarks/bench_kernels.py --benchmark-only

The JSON document (``BENCH_kernels.json``) is the repo's recorded perf
trajectory; see README "Performance" for the schema.
"""

import sys
from pathlib import Path

import numpy as np
import pytest

from repro.gars import get_gar
from repro.gars.benchmark import (
    default_grid,
    format_bench_table,
    run_kernel_benchmarks,
    save_benchmarks,
    smoke_grid,
)
from repro.gars.reference import REFERENCE_AGGREGATORS

#: (name, n, f, d) cells for the pytest-benchmark front end.
PYTEST_CASES = [
    ("krum", 50, 10, 10_000),
    ("geometric-median", 50, 10, 10_000),
    ("median", 50, 10, 10_000),
    ("mda", 11, 5, 69),
    ("bulyan", 11, 2, 69),
]


def _stack(n, d, stack=4, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((stack, n, d))


@pytest.mark.benchmark(group="kernels-new")
@pytest.mark.parametrize("name,n,f,d", PYTEST_CASES)
def test_kernel_new(benchmark, name, n, f, d):
    """Batched engine: one aggregate_batch call over the stack."""
    gar = get_gar(name, n, f)
    stack = _stack(n, d)
    benchmark(gar.aggregate_batch, stack)


@pytest.mark.benchmark(group="kernels-old")
@pytest.mark.parametrize("name,n,f,d", PYTEST_CASES)
def test_kernel_old(benchmark, name, n, f, d):
    """Pre-vectorization reference: per-round Python loop."""
    reference = REFERENCE_AGGREGATORS[name]
    stack = _stack(n, d)
    benchmark(lambda: [reference(matrix, n, f) for matrix in stack])


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    smoke = "--smoke" in argv
    grid = smoke_grid() if smoke else default_grid()
    payload = run_kernel_benchmarks(grid, repeats=3, verbose=True)
    output = Path("BENCH_kernels.json")
    save_benchmarks(payload, output)
    print(f"wrote {output}")
    print(format_bench_table(payload))
    return 0


if __name__ == "__main__":
    sys.exit(main())
