"""Gradient-inversion leakage vs privacy budget.

Quantifies the threat the paper's DP noise is defending against (the
curious parameter server of Fig. 1(b), exploiting the Zhu et al. leak):
single-example gradients of the d = 69 logistic model are inverted
exactly without noise, and the reconstruction error grows as epsilon
shrinks.

Run with ``pytest benchmarks/bench_leakage.py --benchmark-only -s``.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.analysis.leakage import gradient_inversion_study
from repro.data.phishing import make_phishing_dataset
from repro.models.logistic import LogisticRegressionModel
from repro.privacy.mechanisms import GaussianMechanism

OUTPUT_DIR = Path(__file__).parent / "output"

EPSILONS = (0.9, 0.5, 0.2, 0.05)
G_MAX = 1e-2
TRIALS = 200


def run_study() -> list[dict]:
    dataset = make_phishing_dataset(seed=0)
    model = LogisticRegressionModel(dataset.num_features, loss_kind="mse")
    rng = np.random.default_rng(0)
    parameters = 0.05 * rng.standard_normal(model.dimension)
    rows = []
    for epsilon in EPSILONS:
        mechanism = GaussianMechanism.for_clipped_gradients(epsilon, 1e-6, G_MAX, 1)
        report = gradient_inversion_study(
            model,
            dataset,
            mechanism,
            parameters=parameters,
            g_max=G_MAX,
            num_trials=TRIALS,
            seed=1,
        )
        rows.append(
            {
                "epsilon": epsilon,
                "clean_error": report.clean_median_error,
                "noisy_error": report.noisy_median_error,
                "protection": report.protection_factor,
            }
        )
    return rows


@pytest.mark.benchmark(group="privacy")
def test_leakage(benchmark):
    rows = benchmark.pedantic(run_study, rounds=1, iterations=1)

    header = f"{'epsilon':>9}{'clean error':>14}{'noisy error':>14}{'protection':>12}"
    lines = [
        f"Gradient inversion (batch size 1, {TRIALS} samples): the attack "
        "DP exists to stop",
        header,
        "-" * len(header),
    ]
    for row in rows:
        lines.append(
            f"{row['epsilon']:>9}{row['clean_error']:>14.2e}"
            f"{row['noisy_error']:>14.2e}{row['protection']:>12.1e}"
        )
    lines.append(
        "note: a relative error of 1.0 equals guessing the zero vector; "
        "every valid Gaussian budget (eps < 1) already saturates the error "
        "above that — the calibrated noise fully blunts b=1 inversion."
    )
    report = "\n".join(lines)
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    (OUTPUT_DIR / "leakage.txt").write_text(report + "\n")
    print("\n" + report)

    # Exact reconstruction without noise...
    assert all(row["clean_error"] < 1e-8 for row in rows)
    # ...and for EVERY valid Gaussian budget the inversion is destroyed:
    # reconstruction is worse than trivially guessing the zero vector.
    # (The noise scale s = 2 G_max sqrt(2 log(1.25/delta))/(b eps) exceeds
    # the per-coordinate signal ~G_max/sqrt(d) for all eps < 1 at b = 1,
    # so there is no partial-leakage regime to observe.)
    assert all(row["noisy_error"] > 1.0 for row in rows)
