"""Ablation: worker-side vs server-side momentum (DESIGN.md decision).

Section 7 of the paper asks whether variance-reduction techniques such
as exponential gradient averaging can offset the DP noise.  Worker-side
momentum (El-Mhamdi et al. 2021) divides the VN ratio by
``sqrt((1+m)/(1-m))`` (~14.1 at m = 0.99) — this bench quantifies how
much that buys in practice, and confirms the theoretical factor with a
direct Monte-Carlo estimate.

Run with ``pytest benchmarks/bench_momentum_ablation.py --benchmark-only -s``.
"""

from pathlib import Path

import pytest

from repro.analysis.variance_reduction import momentum_vn_reduction_factor
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import phishing_environment, run_grid

OUTPUT_DIR = Path(__file__).parent / "output"

STEPS = 500
SEEDS = (1, 2, 3)
CELLS = (
    ("worker-m", "worker", None),
    ("server-m", "server", None),
    ("worker-m-dp", "worker", 0.2),
    ("server-m-dp", "server", 0.2),
)


def run_ablation() -> dict:
    model, train_set, test_set = phishing_environment()
    configs = [
        ExperimentConfig(
            name=name,
            num_steps=STEPS,
            gar="mda",
            f=5,
            attack="little",
            batch_size=50,
            epsilon=epsilon,
            momentum_at=placement,
            seeds=SEEDS,
        )
        for name, placement, epsilon in CELLS
    ]
    return run_grid(configs, model, train_set, test_set)


@pytest.mark.benchmark(group="ablations")
def test_momentum_placement(benchmark):
    outcomes = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    lines = [
        f"Momentum placement under ALIE: MDA, b=50, {STEPS} steps, "
        f"{len(SEEDS)} seeds",
        f"theoretical VN-ratio reduction at m=0.99: "
        f"{1 / momentum_vn_reduction_factor(0.99):.1f}x",
        f"{'cell':<14}{'max acc':>9}{'final acc':>11}",
        "-" * 34,
    ]
    results = {}
    for name, _, _ in CELLS:
        stats = outcomes[name].accuracy_stats
        results[name] = float(stats.mean.max())
        lines.append(f"{name:<14}{results[name]:>9.3f}{stats.final_mean:>11.3f}")
    report = "\n".join(lines)
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    (OUTPUT_DIR / "momentum_ablation.txt").write_text(report + "\n")
    print("\n" + report)

    # Worker momentum is the load-bearing defence without DP...
    assert results["worker-m"] > results["server-m"] + 0.02
    # ...but does NOT rescue the DP case at b=50 (the paper's point:
    # a constant-factor reduction cannot beat a sqrt(d) wall).
    assert results["worker-m-dp"] < results["worker-m"] - 0.15
