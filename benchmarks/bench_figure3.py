"""Figure 3 reproduction: b = 10 — DP hampers training even unattacked.

Expected shape: the non-DP unattacked run still converges; adding the
eps = 0.2 noise at this small batch "significantly hampers the training
even without attack".

Run with ``pytest benchmarks/bench_figure3.py --benchmark-only -s``.
"""

import pytest

from benchmarks.figure_common import render_figure, run_figure_grid, write_output

BATCH_SIZE = 10


@pytest.mark.benchmark(group="figures")
def test_figure3(benchmark):
    outcomes = benchmark.pedantic(
        run_figure_grid, args=(BATCH_SIZE,), rounds=1, iterations=1
    )
    text = render_figure(outcomes, "figure3", BATCH_SIZE)
    write_output("figure3", text, outcomes)
    print("\n" + text)

    baseline = outcomes["avg-noattack-nodp"].accuracy_stats.mean.max()
    assert baseline > 0.88, "b=10 without DP should still converge"
    dp_unattacked = outcomes["avg-noattack-dp"].accuracy_stats.mean.max()
    assert dp_unattacked < baseline - 0.2, (
        "at b=10 the DP noise should hamper training even without attack"
    )
    dp_attacked = outcomes["mda-little-dp"].accuracy_stats.mean.max()
    assert dp_attacked < baseline - 0.2
