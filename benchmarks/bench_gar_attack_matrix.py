"""GAR x attack matrix: generality of the antagonism beyond MDA.

The paper proves Table 1's conditions for seven GARs but only runs MDA
experimentally (it has the best constant).  This bench runs every GAR
valid at n = 11, f = 5 against both paper attacks, with and without
DP — confirming the incompatibility is not an MDA artifact.

Run with ``pytest benchmarks/bench_gar_attack_matrix.py --benchmark-only -s``.
"""

from pathlib import Path

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import phishing_environment, run_grid

OUTPUT_DIR = Path(__file__).parent / "output"

GARS = ("mda", "median", "trimmed-mean", "meamed", "phocas")
ATTACKS = ("little", "empire")
STEPS = 500
SEEDS = (1, 2)


def run_matrix() -> dict:
    model, train_set, test_set = phishing_environment()
    configs = []
    for gar in GARS:
        for attack in ATTACKS:
            for label, epsilon in (("nodp", None), ("dp", 0.2)):
                configs.append(
                    ExperimentConfig(
                        name=f"{gar}|{attack}|{label}",
                        num_steps=STEPS,
                        gar=gar,
                        f=5,
                        attack=attack,
                        batch_size=50,
                        epsilon=epsilon,
                        seeds=SEEDS,
                    )
                )
    return run_grid(configs, model, train_set, test_set)


@pytest.mark.benchmark(group="ablations")
def test_gar_attack_matrix(benchmark):
    outcomes = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    header = f"{'GAR':<14}{'attack':<9}{'max acc (no DP)':>17}{'max acc (DP)':>14}{'DP cost':>9}"
    lines = [
        f"GAR x attack matrix: n=11, f=5, b=50, {STEPS} steps, {len(SEEDS)} seeds",
        header,
        "-" * len(header),
    ]
    dp_costs = []
    for gar in GARS:
        for attack in ATTACKS:
            no_dp = float(outcomes[f"{gar}|{attack}|nodp"].accuracy_stats.mean.max())
            with_dp = float(outcomes[f"{gar}|{attack}|dp"].accuracy_stats.mean.max())
            dp_costs.append(no_dp - with_dp)
            lines.append(
                f"{gar:<14}{attack:<9}{no_dp:>17.3f}{with_dp:>14.3f}"
                f"{no_dp - with_dp:>9.3f}"
            )
    report = "\n".join(lines)
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    (OUTPUT_DIR / "gar_attack_matrix.txt").write_text(report + "\n")
    print("\n" + report)

    # Shape: DP hurts every GAR under attack at b=50 (mean cost
    # clearly positive), echoing Table 1's universal conditions.
    mean_cost = sum(dp_costs) / len(dp_costs)
    assert mean_cost > 0.1, f"expected a clear DP cost, got {mean_cost:.3f}"
    # And without DP, the best rules essentially match the baseline.
    assert float(outcomes["mda|little|nodp"].accuracy_stats.mean.max()) > 0.88
