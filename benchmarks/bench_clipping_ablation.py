"""Ablation: batch-level vs per-example clipping.

The paper's experiments clip the mini-batch averaged gradient
(Section 5.1); the ``2 G_max / b`` sensitivity bound is airtight under
per-example clipping (DESIGN.md).  Findings:

* the antagonism is identical at b = 50 (both modes collapse);
* at b = 500 batch clipping recovers fully, while per-example clipping
  lags: at the paper's tiny G_max = 1e-2 every per-sample gradient is
  ~100x over the bound, so per-example clipping normalises all samples
  (signSGD-like geometry) and biases the average — the price of the
  airtight sensitivity bound at this G_max.

Run with ``pytest benchmarks/bench_clipping_ablation.py --benchmark-only -s``.
"""

from pathlib import Path

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import phishing_environment, run_grid

OUTPUT_DIR = Path(__file__).parent / "output"

STEPS = 500
SEEDS = (1, 2)
CELLS = [
    (batch, clip)
    for batch in (50, 500)
    for clip in ("batch", "per_example")
]


def run_ablation() -> dict:
    model, train_set, test_set = phishing_environment()
    configs = [
        ExperimentConfig(
            name=f"b{batch}-{clip}",
            num_steps=STEPS,
            gar="mda",
            f=5,
            attack="little",
            batch_size=batch,
            epsilon=0.2,
            clip_mode=clip,
            seeds=SEEDS,
        )
        for batch, clip in CELLS
    ]
    return run_grid(configs, model, train_set, test_set)


@pytest.mark.benchmark(group="ablations")
def test_clipping_ablation(benchmark):
    outcomes = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    lines = [
        f"Clipping mode under MDA + ALIE + DP(0.2), {STEPS} steps, "
        f"{len(SEEDS)} seeds",
        f"{'cell':<22}{'max acc':>9}",
        "-" * 31,
    ]
    results = {}
    for batch, clip in CELLS:
        name = f"b{batch}-{clip}"
        results[name] = float(outcomes[name].accuracy_stats.mean.max())
        lines.append(f"{name:<22}{results[name]:>9.3f}")
    report = "\n".join(lines)
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    (OUTPUT_DIR / "clipping_ablation.txt").write_text(report + "\n")
    print("\n" + report)

    # Both modes broken at b=50 (the antagonism is clip-mode agnostic).
    for clip in ("batch", "per_example"):
        assert results[f"b50-{clip}"] < 0.75
    # At b=500 batch clipping recovers fully; per-example clipping pays
    # a normalisation-bias penalty but still clearly beats its own b=50.
    assert results["b500-batch"] > 0.88
    assert results["b500-per_example"] > results["b50-per_example"] + 0.1
