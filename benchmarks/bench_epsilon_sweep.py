"""Epsilon sweep: the privacy/utility trade-off under attack.

The paper's second experimental takeaway (Section 5.2): "slightly
larger privacy noises gracefully translate into slightly lower
performances; not any abrupt decrease" — for the convex task, accuracy
degrades monotonically-ish as epsilon shrinks, so a practitioner can
trade accuracy for privacy even with adversaries present.

This sweep is the repo's stand-in for the full version's
hyperparameter grid (the arXiv v1 appendix).

Run with ``pytest benchmarks/bench_epsilon_sweep.py --benchmark-only -s``.
"""

from pathlib import Path

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import phishing_environment, run_grid

OUTPUT_DIR = Path(__file__).parent / "output"

EPSILONS = (None, 0.9, 0.5, 0.2, 0.1, 0.05)
STEPS = 600
SEEDS = (1, 2, 3)


def run_sweep() -> dict:
    model, train_set, test_set = phishing_environment()
    configs = []
    for epsilon in EPSILONS:
        label = "nodp" if epsilon is None else f"eps{epsilon}"
        configs.append(
            ExperimentConfig(
                name=label,
                num_steps=STEPS,
                gar="mda",
                f=5,
                attack="little",
                batch_size=50,
                epsilon=epsilon,
                seeds=SEEDS,
            )
        )
    return run_grid(configs, model, train_set, test_set)


@pytest.mark.benchmark(group="ablations")
def test_epsilon_sweep(benchmark):
    outcomes = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    header = f"{'epsilon':>9}{'max acc':>10}{'final acc':>11}{'min loss':>11}"
    lines = [
        f"Privacy/utility trade-off: MDA + ALIE, b=50, {STEPS} steps, "
        f"{len(SEEDS)} seeds",
        header,
        "-" * len(header),
    ]
    accuracies = []
    for epsilon in EPSILONS:
        label = "nodp" if epsilon is None else f"eps{epsilon}"
        outcome = outcomes[label]
        best = float(outcome.accuracy_stats.mean.max())
        accuracies.append(best)
        lines.append(
            f"{str(epsilon):>9}{best:>10.3f}"
            f"{outcome.accuracy_stats.final_mean:>11.3f}"
            f"{outcome.min_loss_mean:>11.4f}"
        )
    report = "\n".join(lines)
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    (OUTPUT_DIR / "epsilon_sweep.txt").write_text(report + "\n")
    print("\n" + report)

    # Shape: monotone-ish degradation as epsilon shrinks — strong
    # privacy is strictly worse than weak privacy under attack.
    assert accuracies[0] == max(accuracies), "no-DP should be best"
    assert accuracies[1] > accuracies[-1] + 0.05, (
        "eps=0.9 should clearly beat eps=0.05 under attack"
    )
