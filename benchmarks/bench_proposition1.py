"""Proposition 1 reproduction: MDA's tolerable Byzantine fraction vs d.

Sweeps the model size and prints the closed-form bound
``f/n <= C b / (8 sqrt(d) + C b)`` next to the exact master-inequality
threshold, confirming the O(b / (sqrt(d) + b)) decay — the reason
"training large models is practically infeasible".

Run with ``pytest benchmarks/bench_proposition1.py --benchmark-only -s``.
"""

import math
from pathlib import Path

import pytest

from repro.core.feasibility import (
    master_condition_can_hold,
    mda_max_byzantine_fraction,
    privacy_constant,
)
from repro.experiments.ascii_plot import ascii_line_plot
from repro.gars.constants import k_mda

OUTPUT_DIR = Path(__file__).parent / "output"

DIMENSIONS = (69, 1_000, 10_000, 100_000, 1_000_000, 25_600_000)
N, BATCH, EPSILON, DELTA = 101, 50, 0.2, 1e-6


def sweep() -> list[dict]:
    rows = []
    for dimension in DIMENSIONS:
        closed_form = mda_max_byzantine_fraction(dimension, BATCH, EPSILON, DELTA)
        # Exact: largest f (out of n=101) passing the master inequality.
        exact_f = 0
        for f in range(1, (N - 1) // 2 + 1):
            if master_condition_can_hold(k_mda(N, f), dimension, BATCH, EPSILON, DELTA):
                exact_f = f
            else:
                break
        rows.append(
            {
                "dimension": dimension,
                "closed_form_fraction": closed_form,
                "exact_max_f_of_101": exact_f,
            }
        )
    return rows


@pytest.mark.benchmark(group="propositions")
def test_proposition1(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    header = f"{'d':>12}{'closed-form max f/n':>22}{'exact max f (n=101)':>22}"
    lines = [
        f"Proposition 1: MDA max Byzantine fraction, b={BATCH}, eps={EPSILON}, "
        f"delta={DELTA} (C={privacy_constant(EPSILON, DELTA):.4f})",
        header,
        "-" * len(header),
    ]
    for row in rows:
        lines.append(
            f"{row['dimension']:>12,}{row['closed_form_fraction']:>22.3e}"
            f"{row['exact_max_f_of_101']:>22}"
        )
    plot = ascii_line_plot(
        {
            "log10 max f/n": (
                [math.log10(r["dimension"]) for r in rows],
                [math.log10(r["closed_form_fraction"]) for r in rows],
            )
        },
        title="Tolerable Byzantine fraction vs model size (log-log)",
    )
    report = "\n".join(lines) + "\n\n" + plot
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    (OUTPUT_DIR / "proposition1.txt").write_text(report + "\n")
    print("\n" + report)

    # Shape assertions: the fraction decays like 1/sqrt(d).
    fractions = [row["closed_form_fraction"] for row in rows]
    assert all(a > b for a, b in zip(fractions, fractions[1:]))
    ratio = fractions[0] / fractions[3]  # d: 69 -> 100_000
    assert ratio == pytest.approx(math.sqrt(100_000 / 69), rel=0.05)
    # At ResNet-50 scale, not even 1 Byzantine worker in 101 is certified.
    assert rows[-1]["exact_max_f_of_101"] == 0
