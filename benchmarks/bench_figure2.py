"""Figure 2 reproduction: b = 50 — the paper's headline configuration.

Expected shape (paper, Section 5.2):

* without DP, the minimum loss is reached quickly no matter which or
  whether an attack occurred;
* with DP (eps = 0.2), the unattacked runs stay far better than the
  attacked MDA runs — the antagonism between privacy noise and
  (alpha, f)-Byzantine resilience.

Run with ``pytest benchmarks/bench_figure2.py --benchmark-only -s``.
"""

import pytest

from benchmarks.figure_common import render_figure, run_figure_grid, write_output

BATCH_SIZE = 50


@pytest.mark.benchmark(group="figures")
def test_figure2(benchmark):
    outcomes = benchmark.pedantic(
        run_figure_grid, args=(BATCH_SIZE,), rounds=1, iterations=1
    )
    text = render_figure(outcomes, "figure2", BATCH_SIZE)
    write_output("figure2", text, outcomes)
    print("\n" + text)

    # Shape assertions (the paper's qualitative claims).
    baseline = outcomes["avg-noattack-nodp"].accuracy_stats.mean.max()
    assert baseline > 0.9, "baseline failed to converge"
    for attack in ("little", "empire"):
        no_dp = outcomes[f"mda-{attack}-nodp"].accuracy_stats.mean.max()
        assert no_dp > baseline - 0.05, f"{attack} should be harmless without DP"
    attacked_dp = outcomes["mda-little-dp"].accuracy_stats.mean.max()
    unattacked_dp = outcomes["avg-noattack-dp"].accuracy_stats.mean.max()
    assert attacked_dp < baseline - 0.15, "DP + attack should visibly degrade"
    assert unattacked_dp > attacked_dp, "DP alone should beat DP under attack"
