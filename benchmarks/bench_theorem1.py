"""Theorem 1 reproduction: training error Theta(d log(1/delta)/(T b^2 eps^2)).

The lower-bound construction, end to end: the strongly-convex
mean-estimation landscape ``Q(w) = 1/2 E||w - x||^2`` with
``x ~ N(x_bar, (sigma^2/d) I_d)``, the hypothetical honest-output GAR
(:class:`repro.gars.OracleGAR`, footnote 2), the Theorem 1 learning-rate
schedule ``gamma_t = 1/t``, and the paper's Gaussian DP noise.  With
this setup SGD computes a running average of noisy observations, so the
measured error should sit on the Cramér-Rao lower bound and under the
Eq. (12) upper bound — and scale linearly in d with DP, but be
d-independent without DP.

Parameters are chosen so clipping never binds (the theory assumes the
bound G_max is not active): ``b epsilon > 2 sqrt(2 log(1.25/delta) d)``.

Run with ``pytest benchmarks/bench_theorem1.py --benchmark-only -s``.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.core.convergence import theorem1_bounds
from repro.data.synthetic import make_gaussian_mean_dataset
from repro.distributed.trainer import train
from repro.models.quadratic import MeanEstimationModel
from repro.optim.schedules import theorem1_schedule

OUTPUT_DIR = Path(__file__).parent / "output"

DIMENSIONS = (8, 32, 128)
T = 300
BATCH = 150
EPSILON, DELTA = 0.9, 1e-6
G_MAX = 2.0
SIGMA = 1.0  # total data standard deviation (Assumption 4)
SEEDS = tuple(range(1, 11))
NUM_POINTS = 20_000


def run_cell(dimension: int, epsilon: float | None) -> float:
    """Mean final error E[Q(w_{T+1})] - Q* across seeds."""
    model = MeanEstimationModel(dimension)
    errors = []
    for seed in SEEDS:
        # Fresh cloud per seed; true mean with small norm so w0 = 0
        # starts near the optimum and clipping never binds.
        mean = np.zeros(dimension)
        mean[0] = 0.1
        dataset = make_gaussian_mean_dataset(
            dimension, NUM_POINTS, sigma=SIGMA, mean=mean, seed=seed
        )
        result = train(
            model=model,
            train_dataset=dataset,
            num_steps=T,
            n=11,
            f=5,
            num_byzantine=0,
            gar="oracle",
            batch_size=BATCH,
            g_max=G_MAX,
            epsilon=epsilon,
            delta=DELTA,
            learning_rate=theorem1_schedule(model.STRONG_CONVEXITY, 0.0),
            momentum=0.0,
            seed=seed,
        )
        optimum = model.optimum(dataset.features)
        error = 0.5 * float(np.sum((result.final_parameters - optimum) ** 2))
        errors.append(error)
    return float(np.mean(errors))


def run_sweep() -> list[dict]:
    rows = []
    for dimension in DIMENSIONS:
        empirical_dp = run_cell(dimension, EPSILON)
        empirical_clean = run_cell(dimension, None)
        bounds_dp = theorem1_bounds(
            T=T, dimension=dimension, batch_size=BATCH, epsilon=EPSILON,
            delta=DELTA, g_max=G_MAX, sigma=SIGMA,
        )
        bounds_clean = theorem1_bounds(
            T=T, dimension=dimension, batch_size=BATCH, epsilon=None,
            delta=DELTA, g_max=G_MAX, sigma=SIGMA,
        )
        rows.append(
            {
                "dimension": dimension,
                "empirical_dp": empirical_dp,
                "lower_dp": bounds_dp.lower,
                "upper_dp": bounds_dp.upper,
                "empirical_clean": empirical_clean,
                "lower_clean": bounds_clean.lower,
                "upper_clean": bounds_clean.upper,
            }
        )
    return rows


@pytest.mark.benchmark(group="theorem1")
def test_theorem1(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    header = (
        f"{'d':>6}{'empirical (DP)':>16}{'CR lower':>12}{'Eq.12 upper':>13}"
        f"{'empirical (no DP)':>19}{'no-DP lower':>13}"
    )
    lines = [
        f"Theorem 1: mean estimation, oracle GAR, T={T}, b={BATCH}, "
        f"eps={EPSILON}, delta={DELTA}, {len(SEEDS)} seeds",
        header,
        "-" * len(header),
    ]
    for row in rows:
        lines.append(
            f"{row['dimension']:>6}{row['empirical_dp']:>16.3e}"
            f"{row['lower_dp']:>12.3e}{row['upper_dp']:>13.3e}"
            f"{row['empirical_clean']:>19.3e}{row['lower_clean']:>13.3e}"
        )
    dp_errors = [row["empirical_dp"] for row in rows]
    clean_errors = [row["empirical_clean"] for row in rows]
    lines.append("")
    lines.append(
        f"DP error scaling d=8 -> d=128 (theory ~{rows[-1]['lower_dp']/rows[0]['lower_dp']:.1f}x): "
        f"{dp_errors[-1]/dp_errors[0]:.1f}x"
    )
    lines.append(
        f"no-DP error scaling d=8 -> d=128 (theory 1.0x): "
        f"{clean_errors[-1]/clean_errors[0]:.2f}x"
    )
    report = "\n".join(lines)
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    (OUTPUT_DIR / "theorem1.txt").write_text(report + "\n")
    print("\n" + report)

    for row in rows:
        # The running-average estimator sits on the CR bound (MC slack).
        assert row["empirical_dp"] >= 0.6 * row["lower_dp"]
        assert row["empirical_dp"] <= row["upper_dp"]
        assert row["empirical_clean"] <= row["upper_clean"]
    # Linear-in-d with DP; d-independent without.
    theory_ratio = rows[-1]["lower_dp"] / rows[0]["lower_dp"]
    assert dp_errors[-1] / dp_errors[0] == pytest.approx(theory_ratio, rel=0.35)
    assert clean_errors[-1] / clean_errors[0] < 2.0
    # DP costs orders of magnitude at d = 128.
    assert dp_errors[-1] / clean_errors[-1] > 50.0
