"""Microbenchmark: aggregation throughput of every GAR.

Not a paper experiment, but an engineering datum any adopter wants:
how each rule scales with the number of workers and the model size.
MDA's exhaustive subset search is the outlier (C(n, n-f) subsets) —
exactly why its great robustness constant comes at a compute price.

Run with ``pytest benchmarks/bench_gar_throughput.py --benchmark-only``.
"""

import numpy as np
import pytest

from repro.gars import get_gar

DIMENSION = 69  # the paper's model size


def _gradients(n, d, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, d))


@pytest.mark.benchmark(group="gar-throughput-n11")
@pytest.mark.parametrize(
    "name,f",
    [
        ("average", 0),
        ("median", 5),
        ("trimmed-mean", 5),
        ("meamed", 5),
        ("phocas", 5),
        ("mda", 5),
        ("krum", 4),
        ("bulyan", 2),
    ],
)
def test_gar_throughput_paper_size(benchmark, name, f):
    """n = 11 workers, d = 69 — the paper's experimental shape."""
    gar = get_gar(name, 11, f)
    gradients = _gradients(11, DIMENSION)
    benchmark(gar.aggregate, gradients)


@pytest.mark.benchmark(group="gar-throughput-large-d")
@pytest.mark.parametrize("name,f", [("median", 5), ("mda", 5), ("krum", 4)])
def test_gar_throughput_large_model(benchmark, name, f):
    """d = 10_000: coordinate-wise vs distance-based scaling in d."""
    gar = get_gar(name, 11, f)
    gradients = _gradients(11, 10_000)
    benchmark(gar.aggregate, gradients)


@pytest.mark.benchmark(group="gar-throughput-large-n")
@pytest.mark.parametrize("name,f", [("median", 12), ("krum", 11), ("mda", 6)])
def test_gar_throughput_many_workers(benchmark, name, f):
    """n = 25 workers (MDA capped at f = 6 to keep C(25, 19) tractable)."""
    gar = get_gar(name, 25, f)
    gradients = _gradients(25, DIMENSION)
    benchmark(gar.aggregate, gradients)
