"""End-to-end privacy accounting over the paper's 1000-step training.

Section 2.3 notes the per-step budget composes linearly classically, or
more tightly via advanced composition / moments accounting, and that
amplification by subsampling (Section 7) is a future direction.  This
bench quantifies all four accountants on the paper's exact setup.

Run with ``pytest benchmarks/bench_privacy_accounting.py --benchmark-only -s``.
"""

from pathlib import Path

import pytest

from repro.data.phishing import PHISHING_TRAIN_SIZE
from repro.privacy.accountants import (
    AdvancedCompositionAccountant,
    BasicCompositionAccountant,
    RDPAccountant,
)
from repro.privacy.amplification import amplify_by_subsampling
from repro.privacy.mechanisms import GaussianMechanism

OUTPUT_DIR = Path(__file__).parent / "output"

STEPS = 1000
EPSILON, DELTA = 0.2, 1e-6
G_MAX, BATCH = 1e-2, 50


def account() -> dict:
    mechanism = GaussianMechanism.for_clipped_gradients(EPSILON, DELTA, G_MAX, BATCH)
    basic = BasicCompositionAccountant().compose(EPSILON, DELTA, STEPS)
    advanced = AdvancedCompositionAccountant(slack_delta=1e-6).compose(
        EPSILON, DELTA, STEPS
    )
    rdp = RDPAccountant()
    rdp.step_gaussian(mechanism.noise_multiplier, STEPS)
    rdp_spend = rdp.get_privacy_spent(DELTA)

    amplified = amplify_by_subsampling(EPSILON, DELTA, BATCH, PHISHING_TRAIN_SIZE)
    amplified_basic = BasicCompositionAccountant().compose(
        amplified.epsilon, max(amplified.delta, 1e-12), STEPS
    )
    return {
        "sigma": mechanism.sigma,
        "noise_multiplier": mechanism.noise_multiplier,
        "basic": basic,
        "advanced": advanced,
        "rdp": rdp_spend,
        "amplified_per_step": amplified,
        "amplified_basic": amplified_basic,
    }


@pytest.mark.benchmark(group="privacy")
def test_privacy_accounting(benchmark):
    report = benchmark.pedantic(account, rounds=1, iterations=1)

    lines = [
        f"End-to-end privacy over T={STEPS} steps of ({EPSILON}, {DELTA})-DP "
        f"(G_max={G_MAX}, b={BATCH}):",
        f"  per-step noise sigma                : {report['sigma']:.4g}",
        f"  noise multiplier (sigma/sensitivity): {report['noise_multiplier']:.3f}",
        f"  basic composition                   : eps={report['basic'].epsilon:.1f}, "
        f"delta={report['basic'].delta:.2e}",
        f"  advanced composition                : eps={report['advanced'].epsilon:.1f}, "
        f"delta={report['advanced'].delta:.2e}",
        f"  RDP / moments accountant            : eps={report['rdp'].epsilon:.1f}, "
        f"delta={report['rdp'].delta:.2e}",
        f"  subsampling-amplified per-step      : eps={report['amplified_per_step'].epsilon:.4f}",
        f"  amplified + basic composition       : eps={report['amplified_basic'].epsilon:.2f}",
    ]
    text = "\n".join(lines)
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    (OUTPUT_DIR / "privacy_accounting.txt").write_text(text + "\n")
    print("\n" + text)

    # Orderings the accountants must respect.
    assert report["rdp"].epsilon < report["advanced"].epsilon < report["basic"].epsilon
    assert report["amplified_per_step"].epsilon < EPSILON
    assert report["basic"].epsilon == pytest.approx(STEPS * EPSILON)
